(* Water tank level control with a relay (the paper's relay stereotype)
   duplicating the level flow to both the controller and a logger.

   - tank streamer: Torricelli drain + controllable inflow;
   - valve controller streamer: on/off inflow with hysteresis, driven by
     a supervisor capsule through high/low guards;
   - logger streamer: integrates |level - setpoint| (a running cost),
     fed by the SAME flow through a fanout-2 relay.

   Run with: dune exec examples/water_tank.exe *)

let tank = Plant.Water_tank.create ~tank_area:1.5 ~outlet_area:0.008 ()

let protocol =
  Umlrt.Protocol.create "Tank"
    ~incoming:[ Umlrt.Protocol.signal "open_valve"; Umlrt.Protocol.signal "close_valve" ]
    ~outgoing:[ Umlrt.Protocol.signal "level_low"; Umlrt.Protocol.signal "level_high" ]

let tank_streamer =
  let rhs (env : Hybrid.Solver.env) _t y =
    let level = y.(0) in
    let q_in =
      env.Hybrid.Solver.param "valve" *. env.Hybrid.Solver.param "q_max"
    in
    let dh = (q_in -. Plant.Water_tank.outflow tank ~level) /. tank.Plant.Water_tank.tank_area in
    [| (if level <= 0. && dh < 0. then 0. else dh) |]
  in
  let guards =
    [ { Hybrid.Streamer.guard_id = "low"; signal = "level_low"; via_sport = "sup";
        direction = Ode.Events.Falling;
        expr = (fun _ _ y -> y.(0) -. 0.9); payload = None };
      { Hybrid.Streamer.guard_id = "high"; signal = "level_high"; via_sport = "sup";
        direction = Ode.Events.Rising;
        expr = (fun _ _ y -> y.(0) -. 1.1); payload = None } ]
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"open_valve"
    (Hybrid.Strategy.set_param_const "valve" 1.);
  Hybrid.Strategy.on strategy ~signal:"close_valve"
    (Hybrid.Strategy.set_param_const "valve" 0.);
  Hybrid.Streamer.leaf "tank" ~rate:0.1 ~dim:1 ~init:[| 1.0 |]
    ~params:[ ("valve", 1.); ("q_max", 0.08) ]
    ~dports:[ Hybrid.Streamer.dport_out "level" ]
    ~sports:[ Hybrid.Streamer.sport "sup" protocol ]
    ~guards ~strategy
    ~outputs:(Hybrid.Streamer.state_outputs [ (0, "level") ])
    ~rhs

(* Running cost: J' = |level - setpoint|. *)
let logger_streamer =
  Hybrid.Streamer.leaf "logger" ~rate:0.1 ~dim:1 ~init:[| 0. |]
    ~params:[ ("setpoint", 1.0) ]
    ~dports:[ Hybrid.Streamer.dport_in "level"; Hybrid.Streamer.dport_out "cost" ]
    ~outputs:(Hybrid.Streamer.state_outputs [ (0, "cost") ])
    ~rhs:(fun (env : Hybrid.Solver.env) _t _y ->
        [| Float.abs (env.Hybrid.Solver.input "level"
                      -. env.Hybrid.Solver.param "setpoint") |])

(* A monitor streamer on the second relay branch: tracks the peak level. *)
let monitor_streamer =
  Hybrid.Streamer.leaf "monitor" ~rate:0.1 ~dim:1 ~init:[| 0. |]
    ~dports:[ Hybrid.Streamer.dport_in "level"; Hybrid.Streamer.dport_out "peak" ]
    ~outputs:(Hybrid.Streamer.state_outputs [ (0, "peak") ])
    ~rhs:(fun (env : Hybrid.Solver.env) _t y ->
        (* Peak follower: rise instantly (fast pole), never decay. *)
        let level = env.Hybrid.Solver.input "level" in
        [| (if level > y.(0) then 50. *. (level -. y.(0)) else 0.) |])

let supervisor =
  let behavior (services : Umlrt.Capsule.services) =
    let m = Statechart.Machine.create "tank-supervisor" in
    Statechart.Machine.add_state m "Filling";
    Statechart.Machine.add_state m "Draining";
    Statechart.Machine.set_initial m "Filling";
    let send signal _ _ =
      services.Umlrt.Capsule.send ~port:"tank" (Statechart.Event.make signal)
    in
    Statechart.Machine.add_transition m ~src:"Filling" ~dst:"Draining"
      ~trigger:"level_high" ~action:(send "close_valve") ();
    Statechart.Machine.add_transition m ~src:"Draining" ~dst:"Filling"
      ~trigger:"level_low" ~action:(send "open_valve") ();
    let i = ref None in
    { Umlrt.Capsule.on_start = (fun () -> i := Some (Statechart.Instance.start m ()));
      on_event =
        (fun ~port:_ e ->
           match !i with Some i -> Statechart.Instance.handle i e | None -> false);
      configuration =
        (fun () ->
           match !i with Some i -> Statechart.Instance.configuration i | None -> []) }
  in
  Umlrt.Capsule.create "tank-supervisor"
    ~ports:[ Umlrt.Capsule.port ~conjugated:true "tank" protocol ]
    ~behavior

let () =
  let engine = Hybrid.Engine.create ~root:supervisor () in
  Hybrid.Engine.add_streamer engine ~role:"tank" tank_streamer;
  Hybrid.Engine.add_streamer engine ~role:"logger" logger_streamer;
  Hybrid.Engine.add_streamer engine ~role:"monitor" monitor_streamer;
  (* The relay stereotype: one level flow duplicated to two consumers. *)
  Hybrid.Engine.add_relay engine ~name:"split" Dataflow.Flow_type.float_flow
    ~fanout:2;
  Hybrid.Engine.connect_flow_exn engine ~src:("tank", "level") ~dst:("split", "in");
  Hybrid.Engine.connect_flow_exn engine ~src:("split", "out1") ~dst:("logger", "level");
  Hybrid.Engine.connect_flow_exn engine ~src:("split", "out2") ~dst:("monitor", "level");
  Hybrid.Engine.link_sport_exn engine ~role:"tank" ~sport:"sup" ~border_port:"tank";
  let level_trace = Hybrid.Engine.trace_dport engine ~role:"tank" ~dport:"level" in
  Hybrid.Engine.run_until engine 900.;
  Printf.printf "water tank: 900 simulated seconds, hysteresis band [0.9, 1.1] m\n";
  (match (Sigtrace.Trace.minimum level_trace, Sigtrace.Trace.maximum level_trace) with
   | Some lo, Some hi -> Printf.printf "  level range   : %.3f .. %.3f m\n" lo hi
   | _ -> ());
  (match Hybrid.Engine.read_dport engine ~role:"logger" ~dport:"cost" with
   | Some cost -> Printf.printf "  accumulated cost (int |h - 1|): %.2f m*s\n" cost
   | None -> ());
  (match Hybrid.Engine.read_dport engine ~role:"monitor" ~dport:"peak" with
   | Some peak -> Printf.printf "  peak level (via relay branch 2): %.3f m\n" peak
   | None -> ());
  let stats = Hybrid.Engine.stats engine in
  Printf.printf "  valve switches (signals to streamer): %d\n"
    stats.Hybrid.Engine.signals_to_streamers;
  (match Hybrid.Engine.runtime engine with
   | Some rt ->
     (match Umlrt.Runtime.configuration rt "tank-supervisor" with
      | Some c -> Printf.printf "  supervisor: %s\n" (String.concat "/" c)
      | None -> ())
   | None -> ())
