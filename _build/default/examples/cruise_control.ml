(* Cruise control — setpoint changes and disturbances arrive as events;
   vehicle dynamics and the PI control law run continuously.

   - vehicle streamer: longitudinal dynamics (quadratic drag, rolling
     resistance, road grade parameter);
   - cruise streamer: PI law with the integrator as a continuous state
     (xi' = ref - v), anti-windup by output saturation;
   - driver capsule: a state machine that raises the setpoint during the
     trip and gets told when the car holds the target speed.

   Run with: dune exec examples/cruise_control.exe *)

let car = Plant.Vehicle.default

let protocol =
  Umlrt.Protocol.create "Cruise"
    ~incoming:
      [ Umlrt.Protocol.signal
          ~payload:Dataflow.Flow_type.float_flow "set_speed";
        Umlrt.Protocol.signal "resume" ]
    ~outgoing:[ Umlrt.Protocol.signal "at_speed" ]

let road_protocol =
  Umlrt.Protocol.create "Road"
    ~incoming:
      [ Umlrt.Protocol.signal ~payload:Dataflow.Flow_type.float_flow "grade" ]
    ~outgoing:[]

let vehicle_streamer =
  let rhs (env : Hybrid.Solver.env) _t y =
    let v = Float.max 0. y.(0) in
    let force = env.Hybrid.Solver.input "force" in
    let grade = env.Hybrid.Solver.param "grade" in
    let slope = car.Plant.Vehicle.mass *. car.Plant.Vehicle.gravity *. sin grade in
    let dv =
      (force -. Plant.Vehicle.drag_force car ~speed:v
       -. Plant.Vehicle.rolling_force car -. slope)
      /. car.Plant.Vehicle.mass
    in
    [| (if y.(0) <= 0. && dv < 0. then 0. else dv) |]
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"grade"
    (Hybrid.Strategy.set_param_from_payload "grade");
  Hybrid.Streamer.leaf "vehicle" ~rate:0.02 ~dim:1 ~init:[| 20. |]
    ~params:[ ("grade", 0.) ]
    ~dports:[ Hybrid.Streamer.dport_in "force"; Hybrid.Streamer.dport_out "speed" ]
    ~sports:[ Hybrid.Streamer.sport "road" road_protocol ]
    ~strategy
    ~outputs:(Hybrid.Streamer.state_outputs [ (0, "speed") ])
    ~rhs

let cruise_streamer =
  (* State: the PI integrator. Output: saturated drive force. *)
  let control (env : Hybrid.Solver.env) y =
    let v = env.Hybrid.Solver.input "speed" in
    let p = env.Hybrid.Solver.param in
    let u = (p "kp" *. (p "ref" -. v)) +. (p "ki" *. y.(0)) in
    Float.max 0. (Float.min (p "f_max") u)
  in
  let rhs (env : Hybrid.Solver.env) _t y =
    let v = env.Hybrid.Solver.input "speed" in
    let p = env.Hybrid.Solver.param in
    let err = p "ref" -. v in
    (* Conditional integration: freeze while saturated in that direction. *)
    let u = (p "kp" *. err) +. (p "ki" *. y.(0)) in
    let saturated_high = u >= p "f_max" && err > 0. in
    let saturated_low = u <= 0. && err < 0. in
    [| (if saturated_high || saturated_low then 0. else err) |]
  in
  let at_speed_guard =
    { Hybrid.Streamer.guard_id = "at_speed"; signal = "at_speed";
      via_sport = "cmd"; direction = Ode.Events.Rising;
      expr =
        (fun (env : Hybrid.Solver.env) _t _y ->
           0.2 -. Float.abs (env.Hybrid.Solver.param "ref"
                             -. env.Hybrid.Solver.input "speed"));
      payload = None }
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"set_speed"
    (Hybrid.Strategy.set_param_from_payload "ref");
  Hybrid.Streamer.leaf "cruise" ~rate:0.02 ~dim:1 ~init:[| 0. |]
    ~params:
      [ ("ref", 20.); ("kp", 900.); ("ki", 120.); ("f_max", 4000.) ]
    ~dports:[ Hybrid.Streamer.dport_in "speed"; Hybrid.Streamer.dport_out "force" ]
    ~sports:[ Hybrid.Streamer.sport "cmd" protocol ]
    ~guards:[ at_speed_guard ]
    ~strategy
    ~outputs:
      (Hybrid.Streamer.output_fn (fun env _t y ->
           [ ("force", Dataflow.Value.Float (control env y)) ]))
    ~rhs

let driver =
  let behavior (services : Umlrt.Capsule.services) =
    let m = Statechart.Machine.create "driver" in
    Statechart.Machine.add_state m "Accelerating";
    Statechart.Machine.add_state m "Cruising";
    Statechart.Machine.set_initial m "Accelerating";
    Statechart.Machine.add_transition m ~src:"Accelerating" ~dst:"Cruising"
      ~trigger:"at_speed" ();
    Statechart.Machine.add_transition m ~src:"Cruising" ~dst:"Accelerating"
      ~trigger:"request" ();
    let i = ref None in
    let send_set v =
      services.Umlrt.Capsule.send ~port:"cruise"
        (Statechart.Event.make ~value:(Dataflow.Value.Float v) "set_speed")
    in
    { Umlrt.Capsule.on_start =
        (fun () ->
           i := Some (Statechart.Instance.start m ());
           send_set 25.;
           (* Trip script: raise the target at t=60, hit a 4% hill at 120. *)
           services.Umlrt.Capsule.timer_after 60.
             (Statechart.Event.make ~value:(Dataflow.Value.Float 30.) "bump");
           services.Umlrt.Capsule.timer_after 120.
             (Statechart.Event.make ~value:(Dataflow.Value.Float 0.04) "hill"));
      on_event =
        (fun ~port:_ event ->
           match Statechart.Event.signal event with
           | "bump" ->
             (match Statechart.Event.float_payload event with
              | Some v ->
                send_set v;
                (match !i with
                 | Some i ->
                   ignore (Statechart.Instance.handle i (Statechart.Event.make "request"))
                 | None -> ());
                true
              | None -> false)
           | "hill" ->
             (match Statechart.Event.float_payload event with
              | Some g ->
                services.Umlrt.Capsule.send ~port:"road"
                  (Statechart.Event.make ~value:(Dataflow.Value.Float g) "grade");
                true
              | None -> false)
           | _ ->
             (match !i with
              | Some i -> Statechart.Instance.handle i event
              | None -> false));
      configuration =
        (fun () ->
           match !i with Some i -> Statechart.Instance.configuration i | None -> []) }
  in
  Umlrt.Capsule.create "driver"
    ~ports:
      [ Umlrt.Capsule.port ~conjugated:true "cruise" protocol;
        Umlrt.Capsule.port ~conjugated:true "road" road_protocol ]
    ~behavior

let () =
  let engine = Hybrid.Engine.create ~root:driver () in
  Hybrid.Engine.add_streamer engine ~role:"vehicle" vehicle_streamer;
  Hybrid.Engine.add_streamer engine ~role:"cruise" cruise_streamer;
  Hybrid.Engine.connect_flow_exn engine ~src:("vehicle", "speed")
    ~dst:("cruise", "speed");
  Hybrid.Engine.connect_flow_exn engine ~src:("cruise", "force")
    ~dst:("vehicle", "force");
  Hybrid.Engine.link_sport_exn engine ~role:"cruise" ~sport:"cmd"
    ~border_port:"cruise";
  Hybrid.Engine.link_sport_exn engine ~role:"vehicle" ~sport:"road"
    ~border_port:"road";
  let speed = Hybrid.Engine.trace_dport engine ~role:"vehicle" ~dport:"speed" in
  Hybrid.Engine.run_until engine 180.;
  Printf.printf "cruise control: 180 simulated seconds (set 25, then 30, then a 4%% hill)\n";
  let phase name t0 t1 setpoint =
    let window = Sigtrace.Trace.create ~name () in
    List.iter
      (fun (t, v) -> if t >= t0 && t <= t1 then Sigtrace.Trace.record window t v)
      (Sigtrace.Trace.samples speed);
    let overshoot =
      match Sigtrace.Metrics.overshoot ~setpoint window with
      | Some o -> Printf.sprintf "%.1f%%" (o *. 100.)
      | None -> "n/a"
    in
    let sse =
      match Sigtrace.Metrics.steady_state_error ~setpoint window with
      | Some e -> Printf.sprintf "%.3f m/s" e
      | None -> "n/a"
    in
    Printf.printf "  %-22s overshoot=%s steady-state-error=%s\n" name overshoot sse
  in
  phase "phase 1 (25 m/s)" 0. 60. 25.;
  phase "phase 2 (30 m/s)" 60. 120. 30.;
  phase "phase 3 (hill)" 120. 180. 30.;
  (match Hybrid.Engine.runtime engine with
   | Some rt ->
     (match Umlrt.Runtime.configuration rt "driver" with
      | Some c -> Printf.printf "  driver state: %s\n" (String.concat "/" c)
      | None -> ())
   | None -> ());
  (* Formal requirement, checked on the recorded trace with the STL
     monitor: from 30 s on, the speed always returns to within 0.5 m/s of
     some setpoint (25 or 30) within 20 s. *)
  let near v = Sigtrace.Stl.within "speed" ~center:v ~tolerance:0.5 in
  let requirement =
    Sigtrace.Stl.Always
      (30., 160.,
       Sigtrace.Stl.Eventually (0., 20., Sigtrace.Stl.Or (near 25., near 30.)))
  in
  let ok, robustness = Sigtrace.Stl.check requirement speed in
  Printf.printf "  STL %s: %s (robustness %.3f)\n"
    "always[30,160] eventually[0,20] |v - setpoint| <= 0.5"
    (if ok then "HOLDS" else "VIOLATED") robustness;
  let stats = Hybrid.Engine.stats engine in
  Printf.printf "  signals: %d to streamers, %d to capsules\n"
    stats.Hybrid.Engine.signals_to_streamers stats.Hybrid.Engine.signals_to_capsules
