examples/cruise_control.ml: Array Dataflow Float Hybrid List Ode Plant Printf Sigtrace Statechart String Umlrt
