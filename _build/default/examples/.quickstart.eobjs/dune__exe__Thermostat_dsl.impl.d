examples/thermostat_dsl.ml: Codegen Dsl Hybrid List Printf Sigtrace String
