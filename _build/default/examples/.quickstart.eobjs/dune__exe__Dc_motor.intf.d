examples/dc_motor.mli:
