examples/quickstart.ml: Array Hybrid Int Ode Printf Sigtrace Statechart String Umlrt
