examples/water_tank.mli:
