examples/dc_motor.ml: Array Control Dataflow Float Hybrid List Ode Plant Printf Sigtrace Statechart Umlrt
