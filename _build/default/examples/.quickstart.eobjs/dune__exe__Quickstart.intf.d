examples/quickstart.mli:
