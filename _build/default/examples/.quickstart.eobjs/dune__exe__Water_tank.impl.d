examples/water_tank.ml: Array Dataflow Float Hybrid Ode Plant Printf Sigtrace Statechart String Umlrt
