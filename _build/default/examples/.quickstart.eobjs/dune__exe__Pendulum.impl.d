examples/pendulum.ml: Array Control Dataflow Float Hybrid Ode Plant Printf Sigtrace Statechart String Umlrt
