examples/thermostat_dsl.mli:
