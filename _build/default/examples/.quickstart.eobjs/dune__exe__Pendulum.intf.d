examples/pendulum.mli:
