(** Bounded lock-free single-producer single-consumer ring.

    Exactly one domain may call {!push} and exactly one domain may call
    {!pop} (they can be the same domain). FIFO, no loss, no locks;
    memory is bounded by the fixed capacity — {!push} reports failure
    when the ring is full instead of growing or blocking, so a stalled
    consumer can never make the producer allocate unboundedly through
    this channel. *)

type 'a t

val create : capacity:int -> 'a t
(** Capacity is rounded up to the next power of two. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently queued (exact when called from either endpoint,
    a snapshot otherwise). *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> bool
(** Producer side: enqueue, or return [false] if the ring is full. *)

val pop : 'a t -> 'a option
(** Consumer side: dequeue the oldest element. *)
