(** The sharded runtime: one OCaml 5 domain per shard of a
    {!Plan.t}, synchronized by conservative lookahead-bounded epochs.

    Results are bit-identical to the single-domain engine — solver
    states, signal traces and the telemetry stream (all but the
    [wall_ns] and per-ring flight-recorder [dropped] fields) — because
    epoch targets never outrun the minimum cross-shard signal latency,
    cross-shard deliveries are re-anchored at their send instant with
    the exact float arithmetic of a local send, and the telemetry
    cadence is replayed at barriers over merged per-shard registries.
    See DESIGN §5h for the protocol and its one documented limit
    (cross-shard vs local tie order at exactly equal timestamps).

    Not supported in sharded mode (the CLI rejects the combinations):
    fault injection, the profiler, Chrome tracing, crash reports and
    lossy signal channels — their observability state is process-global
    by design. *)

type t

val create :
  ?signal_latency:Rt.Channel.latency_model ->
  Plan.t -> Dsl.Typecheck.checked -> t
(** Elaborate one engine per shard (each with its own metrics registry
    and flight-recorder ring) and wire cross-shard SPort links through
    SPSC rings. Raises [Invalid_argument] when the plan has cross-shard
    links but no strictly positive latency floor. *)

val run : t -> until:float -> unit
(** Spawn the worker domains, run the epoch protocol to the horizon,
    join the workers. Callable again with a later horizon. Re-raises
    the first worker failure after stopping every domain. *)

val plan : t -> Plan.t
val engines : t -> Hybrid.Engine.t array

val engine_of_role : t -> string -> Hybrid.Engine.t option
(** The engine hosting a leaf streamer role (for traces and solver
    inspection). *)

val roles : t -> string list
(** Leaf streamer roles in model declaration order, across all shards. *)

val stats : t -> Hybrid.Engine.stats
(** Per-shard engine stats, summed. *)

val metrics : t -> Obs.Metrics.t
(** The merged view over every shard's registry (plus the default one),
    freshly rebuilt — the same registry the telemetry stream reads. The
    returned registry is reused by later merges; read, don't keep. *)

val shutdown : t -> unit
(** Stop and join the worker domains (idempotent; [run] does this on
    exit, so it is only needed after an exceptional escape). *)
