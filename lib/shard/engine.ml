(* The sharded runtime: one OCaml domain per shard of a partition plan,
   synchronized by conservative lookahead-bounded epochs.

   Structure: the coordinator (the calling domain) elaborates one
   hybrid engine per shard — each against its own metrics registry and
   flight-recorder ring — and spawns one worker domain per shard. A
   run is a sequence of epochs: every worker executes its engine's
   events up to (and including) the epoch target E_k, then parks at a
   barrier; the coordinator drains the cross-shard rings, schedules the
   carried signals on their destination engines, replays the telemetry
   cadence over the merged registries, picks the next target and
   releases the workers.

   Bit-identity rests on three invariants:

   - Lookahead. Epoch targets advance by at most L, the minimum
     latency any cross-shard signal channel can draw (Constant links
     only — the plan co-locates everything else). A signal sent at
     time s during epoch k has s > E_{k-1}, so its delivery at
     s + latency lands strictly after E_k: scheduling it at the barrier
     is never late, and [Mailbox.send_from] computes the delivery
     instant with the exact float expression a local send would have
     used.

   - Quiescent telemetry. Epoch targets also never cross the next
     pending cadence boundary, so every emission opportunity of the
     single-domain stream (which cuts records just before the first
     event past a boundary) falls exactly on a barrier, where the
     coordinator calls the same [advance_before] rule with the global
     minimum next-event time over the merged per-shard registries.

   - Single-threaded engines. Each engine is touched by exactly one
     party at a time: its worker during an epoch, the coordinator at a
     barrier. The barrier mutexes carry the happens-before edges, so no
     engine state is ever accessed concurrently.

   Causal identity: worker d mints IDs with base d+1 and stride K+1
   (the coordinator keeps base 0), so IDs never collide across domains
   and flight-recorder entries carried over a hop stay attributable.

   Known limit (documented in DESIGN §5h): a cross-shard delivery
   landing at exactly the same timestamp as an unrelated local event
   may order differently than single-domain, because the delivery is
   scheduled at the barrier rather than mid-epoch. Choose latencies off
   the tick grid (e.g. 0.013) when exact tie order matters. *)

type msg = {
  m_sent : float;
  m_cause : int;
  m_event : Statechart.Event.t;
}

(* One cross-shard link (capsule shard -> [c_dst]); the ring is pushed
   by the capsule shard's worker mid-epoch and drained by the
   coordinator at barriers. When the ring fills, the producer spills to
   a local overflow queue — safe because the consumer only runs while
   the producer is parked — so a burst can never be lost or block. *)
type carrier = {
  c_role : string;
  c_sport : string;
  c_dst : int;
  c_ring : msg Spsc.t;
  c_overflow : msg Queue.t;
}

let carrier_push c m =
  if not (Queue.is_empty c.c_overflow) || not (Spsc.push c.c_ring m) then
    Queue.push m c.c_overflow

let carrier_drain c f =
  let rec ring () =
    match Spsc.pop c.c_ring with
    | Some m -> f m; ring ()
    | None -> ()
  in
  ring ();
  while not (Queue.is_empty c.c_overflow) do f (Queue.pop c.c_overflow) done

type worker = {
  w_engine : Hybrid.Engine.t;
  w_registry : Obs.Metrics.t;
  w_ring : Obs.Flightrec.t;
  w_mu : Mutex.t;
  w_cv : Condition.t;
  mutable w_target : float;
  mutable w_reached : float;
  mutable w_stop : bool;
  mutable w_failure : exn option;
  mutable w_domain : unit Domain.t option;
}

type t = {
  plan : Plan.t;
  workers : worker array;
  carriers : carrier list;           (* in link declaration order *)
  roles : (string * int) list;       (* role -> shard, model order *)
  scratch : Obs.Metrics.t;
  mutable started : bool;
}

let default_ring_capacity = 1024

let create ?signal_latency plan checked =
  let k = plan.Plan.count in
  if plan.Plan.remote_roles <> [] && not (plan.Plan.lookahead > 0.) then
    invalid_arg
      "Shard.Engine.create: cross-shard links need a latency model with a \
       strictly positive lower bound (Constant)";
  (* carriers for every link whose streamer lives off the capsule shard *)
  let sys_links =
    match checked.Dsl.Typecheck.model.Dsl.Ast.m_system with
    | None -> []
    | Some sys ->
      List.filter_map
        (function
          | Dsl.Ast.Clink { cl_streamer = si, sp; _ } -> Some (si, sp)
          | Dsl.Ast.Cflow _ -> None)
        sys.Dsl.Ast.sys_connections
  in
  let carriers =
    List.filter_map
      (fun (si, sp) ->
         let d = Plan.shard_of plan si in
         if d = plan.Plan.capsule_shard then None
         else
           Some
             { c_role = si; c_sport = sp; c_dst = d;
               c_ring = Spsc.create ~capacity:default_ring_capacity;
               c_overflow = Queue.create () })
      sys_links
  in
  let find_carrier role sport =
    List.find
      (fun c -> String.equal c.c_role role && String.equal c.c_sport sport)
      carriers
  in
  (* the send side needs the source engine's clock, which does not exist
     until the capsule shard is elaborated — a forward ref closes the
     cycle (pushes only happen once the run is under way). *)
  let src_now = ref (fun () -> 0.) in
  let remote_send ~role ~sport =
    let c = find_carrier role sport in
    fun event ->
      carrier_push c
        { m_sent = !src_now ();
          m_cause = Obs.Causal.current ();
          m_event = event }
  in
  let shard_of name = Plan.shard_of plan name in
  let workers =
    Array.init k (fun d ->
        let registry = Obs.Metrics.create () in
        Obs.Metrics.set_ambient registry;
        let elaborated =
          Fun.protect
            ~finally:(fun () -> Obs.Metrics.set_ambient Obs.Metrics.default)
            (fun () ->
               Dsl.Elaborate.elaborate ?signal_latency
                 ~partition:
                   { Dsl.Elaborate.shard_of; me = d;
                     capsule_shard = plan.Plan.capsule_shard; remote_send }
                 checked)
        in
        { w_engine = elaborated.Dsl.Elaborate.engine;
          w_registry = registry;
          w_ring = Obs.Flightrec.create ();
          w_mu = Mutex.create ();
          w_cv = Condition.create ();
          w_target = 0.;
          w_reached = 0.;
          w_stop = false;
          w_failure = None;
          w_domain = None })
  in
  let cap_des =
    Hybrid.Engine.des workers.(plan.Plan.capsule_shard).w_engine
  in
  src_now := (fun () -> Des.Engine.now cap_des);
  let roles =
    match checked.Dsl.Typecheck.model.Dsl.Ast.m_system with
    | None -> []
    | Some sys ->
      List.filter_map
        (function
          | Dsl.Ast.Istreamer { iname; _ } -> Some (iname, shard_of iname)
          | _ -> None)
        sys.Dsl.Ast.sys_instances
  in
  { plan; workers; carriers; roles; scratch = Obs.Metrics.create ();
    started = false }

let plan t = t.plan
let engines t = Array.map (fun w -> w.w_engine) t.workers

let engine_of_role t role =
  match List.assoc_opt role t.roles with
  | Some d -> Some t.workers.(d).w_engine
  | None -> None

let roles t = List.map fst t.roles

let stats t =
  Array.fold_left
    (fun acc w ->
       let s = Hybrid.Engine.stats w.w_engine in
       { Hybrid.Engine.ticks_total = acc.Hybrid.Engine.ticks_total + s.Hybrid.Engine.ticks_total;
         signals_to_streamers =
           acc.Hybrid.Engine.signals_to_streamers + s.Hybrid.Engine.signals_to_streamers;
         signals_to_capsules =
           acc.Hybrid.Engine.signals_to_capsules + s.Hybrid.Engine.signals_to_capsules;
         signals_dropped =
           acc.Hybrid.Engine.signals_dropped + s.Hybrid.Engine.signals_dropped })
    { Hybrid.Engine.ticks_total = 0; signals_to_streamers = 0;
      signals_to_capsules = 0; signals_dropped = 0 }
    t.workers

(* merged view for telemetry: counters and histograms sum, and so do
   gauges (every gauge is a per-engine quantity like queue depth, whose
   single-domain value is the whole-system sum). *)
let refresh_merge t =
  Obs.Metrics.reset t.scratch;
  Obs.Metrics.merge ~sum_gauges:true ~into:t.scratch Obs.Metrics.default;
  Array.iter
    (fun w -> Obs.Metrics.merge ~sum_gauges:true ~into:t.scratch w.w_registry)
    t.workers

let metrics t =
  refresh_merge t;
  t.scratch

let flight_totals t () =
  Array.fold_left
    (fun (r, d) w ->
       (r + Obs.Flightrec.ring_total w.w_ring,
        d + Obs.Flightrec.ring_dropped w.w_ring))
    (Obs.Flightrec.total (), Obs.Flightrec.dropped ())
    t.workers

let worker_main k d w () =
  Obs.Metrics.set_ambient w.w_registry;
  Obs.Flightrec.set_ambient w.w_ring;
  Obs.Causal.set_identity ~base:(d + 1) ~stride:(k + 1);
  let des = Hybrid.Engine.des w.w_engine in
  let rec loop () =
    Mutex.lock w.w_mu;
    while (not w.w_stop) && w.w_target <= w.w_reached do
      Condition.wait w.w_cv w.w_mu
    done;
    if w.w_stop then Mutex.unlock w.w_mu
    else begin
      let target = w.w_target in
      Mutex.unlock w.w_mu;
      (try ignore (Des.Engine.run_until des target)
       with e -> w.w_failure <- Some e);
      Mutex.lock w.w_mu;
      w.w_reached <- target;
      Condition.broadcast w.w_cv;
      Mutex.unlock w.w_mu;
      if w.w_failure = None then loop ()
    end
  in
  loop ()

let release_to w target =
  Mutex.lock w.w_mu;
  w.w_target <- target;
  Condition.broadcast w.w_cv;
  Mutex.unlock w.w_mu

let wait_reached w target =
  Mutex.lock w.w_mu;
  while w.w_reached < target && w.w_failure = None do
    Condition.wait w.w_cv w.w_mu
  done;
  Mutex.unlock w.w_mu

let shutdown t =
  Array.iter
    (fun w ->
       match w.w_domain with
       | None -> ()
       | Some dom ->
         Mutex.lock w.w_mu;
         w.w_stop <- true;
         Condition.broadcast w.w_cv;
         Mutex.unlock w.w_mu;
         Domain.join dom;
         w.w_domain <- None)
    t.workers

let check_failures t =
  match
    Array.fold_left
      (fun acc w -> match acc with Some _ -> acc | None -> w.w_failure)
      None t.workers
  with
  | None -> ()
  | Some e ->
    shutdown t;
    raise e

let barrier_to t target =
  Array.iter (fun w -> release_to w target) t.workers;
  Array.iter (fun w -> wait_reached w target) t.workers;
  check_failures t

let deliver t c m =
  let saved = Obs.Causal.current () in
  Obs.Causal.set m.m_cause;
  Fun.protect
    ~finally:(fun () -> Obs.Causal.set saved)
    (fun () ->
       Hybrid.Engine.deliver_remote t.workers.(c.c_dst).w_engine
         ~role:c.c_role ~sport:c.c_sport ~sent:m.m_sent m.m_event)

let drain_all t =
  List.iter (fun c -> carrier_drain c (deliver t c)) t.carriers

let global_next t =
  Array.fold_left
    (fun acc w ->
       match Des.Engine.next_time (Hybrid.Engine.des w.w_engine) with
       | Some v -> Float.min acc v
       | None -> acc)
    infinity t.workers

let start t =
  if not t.started then begin
    t.started <- true;
    if Obs.Telemetry.enabled () then begin
      Obs.Telemetry.set_source t.scratch;
      Obs.Telemetry.set_flight_stats (flight_totals t)
    end;
    (* phase one everywhere, then the merged seq-0 record, then phase
       two — the same baseline the single-domain record reads (initial
       outputs written, tick timers armed, behaviours not yet started). *)
    Array.iter (fun w -> Hybrid.Engine.start_outputs w.w_engine) t.workers;
    if Obs.Telemetry.enabled () then begin
      refresh_merge t;
      Obs.Telemetry.begin_stream ~sim:0.
    end;
    Obs.Causal.set_identity ~base:0 ~stride:(t.plan.Plan.count + 1);
    Array.iter (fun w -> Hybrid.Engine.start_rest w.w_engine) t.workers
  end

let run t ~until =
  start t;
  let k = t.plan.Plan.count in
  Array.iteri
    (fun d w ->
       if w.w_domain = None then begin
         w.w_stop <- false;
         w.w_domain <- Some (Domain.spawn (worker_main k d w))
       end)
    t.workers;
  let telemetry = Obs.Telemetry.enabled () in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
       let rec loop prev =
         if prev < until then begin
           let cut =
             Float.min
               (prev +. t.plan.Plan.lookahead)
               (Float.min until (Obs.Telemetry.next_boundary_due ()))
           in
           let e = if cut <= prev then until else cut in
           barrier_to t e;
           drain_all t;
           let next = global_next t in
           if telemetry && next <= until
              && next > Obs.Telemetry.next_boundary_due ()
           then begin
             refresh_merge t;
             Obs.Telemetry.advance_before ~next
           end;
           if next > until then
             (* nothing left before the horizon: one final hop *)
             (if e < until then barrier_to t until)
           else loop e
         end
       in
       loop (Des.Engine.now (Hybrid.Engine.des t.workers.(0).w_engine));
       if telemetry then begin
         refresh_merge t;
         Obs.Telemetry.flush_upto ~upto:until
       end);
  Obs.Causal.set_identity ~base:0 ~stride:1
