(** One linter finding: a stable diagnostic code, a severity, a message,
    and (when the construct came from source text) a [file:line:col]
    span. Codes are stable across releases — CI configurations select and
    ignore by code — and each code carries the paper rule or figure it
    enforces (see {!Rules.registry}). *)

type severity = Error | Warning | Info

type span = { file : string; line : int; col : int }

type t = {
  code : string;        (** stable code, ["UMH001"] ... *)
  severity : severity;
  message : string;
  span : span option;
  rule : string option; (** paper rule reference, e.g. ["R2"] *)
}

val make :
  ?span:span -> ?rule:string -> code:string -> severity:severity -> string -> t

val makef :
  ?span:span -> ?rule:string -> code:string -> severity:severity
  -> ('a, unit, string, t) format4 -> 'a

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val is_error : t -> bool
val gates : t -> bool
(** Errors and warnings gate ([umh lint] exits 1); info findings do not. *)

val promote_warning : t -> t
(** [--werror]: warnings become errors; errors and infos are unchanged. *)

val compare : t -> t -> int
(** Source order: (file, line, col), then severity (errors first), then
    code. Spanless diagnostics sort before positioned ones. *)

val to_string : t -> string
(** ["file:line:col: severity[CODE] message (rule R2)"]. *)

val to_json : t -> Obs.Json.t
