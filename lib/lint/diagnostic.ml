type severity = Error | Warning | Info

type span = { file : string; line : int; col : int }

type t = {
  code : string;
  severity : severity;
  message : string;
  span : span option;
  rule : string option;
}

let make ?span ?rule ~code ~severity message =
  { code; severity; message; span; rule }

let makef ?span ?rule ~code ~severity fmt =
  Printf.ksprintf (make ?span ?rule ~code ~severity) fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let is_error d = d.severity = Error
let gates d = match d.severity with Error | Warning -> true | Info -> false

let promote_warning d =
  match d.severity with Warning -> { d with severity = Error } | Error | Info -> d

let compare a b =
  let span_key = function
    | None -> ("", 0, 0)
    | Some s -> (s.file, s.line, s.col)
  in
  let c = Stdlib.compare (span_key a.span) (span_key b.span) in
  if c <> 0 then c
  else
    let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
    if c <> 0 then c else String.compare a.code b.code

let to_string d =
  let where =
    match d.span with
    | Some s -> Printf.sprintf "%s:%d:%d: " s.file s.line s.col
    | None -> ""
  in
  let rule = match d.rule with Some r -> Printf.sprintf " (rule %s)" r | None -> "" in
  Printf.sprintf "%s%s[%s] %s%s" where (severity_name d.severity) d.code d.message rule

let to_json d =
  let base =
    [ ("code", Obs.Json.Str d.code);
      ("severity", Obs.Json.Str (severity_name d.severity));
      ("message", Obs.Json.Str d.message) ]
  in
  let span =
    match d.span with
    | None -> []
    | Some s ->
      [ ("file", Obs.Json.Str s.file);
        ("line", Obs.Json.Int s.line);
        ("col", Obs.Json.Int s.col) ]
  in
  let rule = match d.rule with None -> [] | Some r -> [ ("rule", Obs.Json.Str r) ] in
  Obs.Json.Obj (base @ span @ rule)
