open Dsl

type input = {
  file : string;
  checked : Typecheck.checked;
  wcet : Analysis.Wcet.t;  (** measured budgets from [--wcet] (may be empty) *)
}

type meta = {
  code : string;
  severity : Diagnostic.severity;
  title : string;
  paper : string;
}

let span_of file (p : Ast.pos) =
  { Diagnostic.file; line = p.Ast.line; col = p.Ast.col }

let diag input (m : meta) ?pos ?rule fmt =
  Diagnostic.makef
    ?span:(Option.map (span_of input.file) pos)
    ?rule ~code:m.code ~severity:m.severity fmt

(* ---------------------------------------------------------------- *)
(* Shared model helpers                                             *)
(* ---------------------------------------------------------------- *)

let find_streamer (model : Ast.model) name =
  List.find_opt
    (fun (s : Ast.streamer_decl) -> String.equal s.Ast.s_name name)
    model.Ast.m_streamers

let find_capsule (model : Ast.model) name =
  List.find_opt
    (fun (c : Ast.capsule_decl) -> String.equal c.Ast.c_name name)
    model.Ast.m_capsules

let rec capsule_triggers (st : Ast.state_decl) =
  List.map (fun (tr : Ast.transition_decl) -> tr.Ast.tr_trigger)
    st.Ast.st_transitions
  @ List.concat_map capsule_triggers st.Ast.st_children

(* ---------------------------------------------------------------- *)
(* The flattened model and the timing/shard analyses over it          *)
(* ---------------------------------------------------------------- *)

(* The structural flattening used to be built here; it moved to
   [Analysis.Model] so the timing analyses and the linter share one
   elaboration-faithful view. Computed once per lint run: the driver
   passes each rule the same input value, so a keyed memo of size 1 is
   enough. *)
let memo_model : (input * Analysis.Model.t option) option ref = ref None

let model_of input =
  match !memo_model with
  | Some (k, v) when k == input -> v
  | _ ->
    let v = Analysis.Model.of_checked input.checked in
    memo_model := Some (input, v);
    v

let memo_report : (input * Analysis.Report.t option) option ref = ref None

let report_of input =
  match !memo_report with
  | Some (k, v) when k == input -> v
  | _ ->
    let v =
      match model_of input with
      | None -> None
      | Some _ ->
        Analysis.Report.run ~wcet:input.wcet ~file:input.file input.checked
    in
    memo_report := Some (input, v);
    v

(* ---------------------------------------------------------------- *)
(* UMH01x — dataflow graph                                          *)
(* ---------------------------------------------------------------- *)

let meta_loop =
  { code = "UMH010"; severity = Diagnostic.Error;
    title = "algebraic loop in the dataflow graph";
    paper = "Fig. 3 (flows are directed; propagation needs an order)" }

let check_loop input =
  match model_of input with
  | None -> []
  | Some b ->
    (match Dataflow.Graph.topo_order b.Analysis.Model.graph with
     | Ok _ -> []
     | Error names ->
       let pos =
         List.find_map
           (fun ((dst, _), pos) ->
              if List.mem dst names then Some pos else None)
           b.Analysis.Model.flow_pos
       in
       [ diag input meta_loop ?pos ~rule:"R2"
           "algebraic loop through %s — every dataflow cycle needs a state \
            (integrator) to break the instantaneous dependency"
           (String.concat " -> " names) ])

let meta_orphan_in =
  { code = "UMH011"; severity = Diagnostic.Warning;
    title = "unconnected DPort input";
    paper = "Fig. 2 (DPorts carry flows between streamers)" }

let check_orphan_inputs input =
  match model_of input with
  | None -> []
  | Some b ->
    List.map
      (fun (node, port) ->
         let pos = List.assoc_opt (node, port) b.Analysis.Model.port_pos in
         diag input meta_orphan_in ?pos ~rule:"R2"
           "DPort input %s.%s has no driving flow — it reads as a constant 0"
           node port)
      (Dataflow.Graph.unconnected_inputs b.Analysis.Model.graph)

let meta_orphan_out =
  { code = "UMH012"; severity = Diagnostic.Info;
    title = "unconnected DPort output";
    paper = "Fig. 2 (DPorts carry flows between streamers)" }

let check_orphan_outputs input =
  match model_of input with
  | None -> []
  | Some b ->
    List.map
      (fun (node, port) ->
         let pos = List.assoc_opt (node, port) b.Analysis.Model.port_pos in
         diag input meta_orphan_out ?pos ~rule:"R2"
           "DPort output %s.%s is computed every tick but never consumed"
           node port)
      (Dataflow.Graph.unconnected_outputs b.Analysis.Model.graph)

(* ---------------------------------------------------------------- *)
(* UMH02x — capsule statecharts                                     *)
(* ---------------------------------------------------------------- *)

let rec state_positions (st : Ast.state_decl) =
  (st.Ast.st_name, st.Ast.st_pos)
  :: List.concat_map state_positions st.Ast.st_children

let rec transition_positions (st : Ast.state_decl) =
  List.map
    (fun (tr : Ast.transition_decl) ->
       ((st.Ast.st_name, tr.Ast.tr_trigger), tr.Ast.tr_pos))
    st.Ast.st_transitions
  @ List.concat_map transition_positions st.Ast.st_children

(* Rebuild the declared statechart as a [Statechart.Machine] — the same
   construction [Dsl.Elaborate] performs, minus actions — and analyze it.
   Structurally broken machines were already rejected by the typechecker,
   so construction failures simply skip the analysis. *)
let analyze_capsule (c : Ast.capsule_decl) =
  if c.Ast.c_states = [] || c.Ast.c_initial = None then None
  else
    try
      let m = Statechart.Machine.create c.Ast.c_name in
      let rec add ?parent (st : Ast.state_decl) =
        Statechart.Machine.add_state m ?parent st.Ast.st_name;
        List.iter (add ~parent:st.Ast.st_name) st.Ast.st_children;
        match st.Ast.st_initial with
        | Some i -> Statechart.Machine.set_initial m ~of_:st.Ast.st_name i
        | None -> ()
      in
      List.iter (fun st -> add st) c.Ast.c_states;
      (match c.Ast.c_initial with
       | Some i -> Statechart.Machine.set_initial m i
       | None -> ());
      let rec add_transitions (st : Ast.state_decl) =
        List.iter
          (fun (tr : Ast.transition_decl) ->
             Statechart.Machine.add_transition m ~src:st.Ast.st_name
               ~dst:tr.Ast.tr_target ~trigger:tr.Ast.tr_trigger ())
          st.Ast.st_transitions;
        List.iter add_transitions st.Ast.st_children
      in
      List.iter add_transitions c.Ast.c_states;
      if Statechart.Machine.validate m = [] then
        Some (Statechart.Analysis.analyze m)
      else None
    with Invalid_argument _ -> None

let over_capsules input f =
  List.concat_map
    (fun (c : Ast.capsule_decl) ->
       match analyze_capsule c with
       | None -> []
       | Some report ->
         let spos = List.concat_map state_positions c.Ast.c_states in
         let tpos = List.concat_map transition_positions c.Ast.c_states in
         f c report ~state_pos:(fun s -> List.assoc_opt s spos)
           ~trans_pos:(fun key -> List.assoc_opt key tpos))
    input.checked.Typecheck.model.Ast.m_capsules

let meta_unreachable =
  { code = "UMH020"; severity = Diagnostic.Warning;
    title = "unreachable state";
    paper = "§3 (capsule behaviour is a statechart)" }

let check_unreachable input =
  over_capsules input
    (fun c report ~state_pos ~trans_pos:_ ->
       List.map
         (fun s ->
            diag input meta_unreachable ?pos:(state_pos s)
              "capsule %S: state %S can never be entered from the initial \
               configuration"
              c.Ast.c_name s)
         report.Statechart.Analysis.unreachable)

let meta_dead =
  { code = "UMH021"; severity = Diagnostic.Warning;
    title = "dead transition";
    paper = "§3 (capsule behaviour is a statechart)" }

let check_dead_transitions input =
  over_capsules input
    (fun c report ~state_pos:_ ~trans_pos ->
       List.map
         (fun (s, trigger) ->
            diag input meta_dead ?pos:(trans_pos (s, trigger))
              "capsule %S: transition on %S can never fire — its source \
               state %S is unreachable"
              c.Ast.c_name trigger s)
         report.Statechart.Analysis.dead_transitions)

let meta_nondet =
  { code = "UMH022"; severity = Diagnostic.Warning;
    title = "nondeterministic trigger";
    paper = "§3 (run-to-completion picks the first match)" }

let check_nondeterminism input =
  over_capsules input
    (fun c report ~state_pos ~trans_pos:_ ->
       List.map
         (fun (s, trigger) ->
            diag input meta_nondet ?pos:(state_pos s)
              "capsule %S: state %S has several unguarded transitions on %S \
               — only the first ever fires"
              c.Ast.c_name s trigger)
         report.Statechart.Analysis.nondeterministic)

let meta_sink =
  { code = "UMH023"; severity = Diagnostic.Info;
    title = "sink state";
    paper = "§3 (capsule behaviour is a statechart)" }

let check_sinks input =
  over_capsules input
    (fun c report ~state_pos ~trans_pos:_ ->
       List.map
         (fun s ->
            diag input meta_sink ?pos:(state_pos s)
              "capsule %S: state %S has no outgoing or inherited transitions \
               — once entered the capsule is inert"
              c.Ast.c_name s)
         report.Statechart.Analysis.sink_states)

(* ---------------------------------------------------------------- *)
(* UMH03x — declaration hygiene                                     *)
(* ---------------------------------------------------------------- *)

let meta_unused_ft =
  { code = "UMH030"; severity = Diagnostic.Warning;
    title = "unused flowtype";
    paper = "Table 1 (flow type specializes protocol)" }

let check_unused_flowtypes input =
  let model = input.checked.Typecheck.model in
  let dport_types dports =
    List.filter_map (fun (d : Ast.dport_decl) -> d.Ast.dp_type) dports
  in
  let used =
    List.concat_map
      (fun (s : Ast.streamer_decl) -> dport_types s.Ast.s_dports)
      model.Ast.m_streamers
    @ List.concat_map
        (fun (c : Ast.capsule_decl) -> dport_types c.Ast.c_dports)
        model.Ast.m_capsules
    @ List.concat_map
        (fun (p : Ast.protocol_decl) ->
           List.filter_map
             (fun (s : Ast.signal_decl) -> s.Ast.sig_payload)
             (p.Ast.proto_in @ p.Ast.proto_out))
        model.Ast.m_protocols
    @ (match model.Ast.m_system with
       | None -> []
       | Some sys ->
         List.filter_map
           (function
             | Ast.Irelay { itype; _ } -> itype
             | Ast.Icapsule _ | Ast.Istreamer _ -> None)
           sys.Ast.sys_instances)
  in
  List.filter_map
    (fun (ftd : Ast.flowtype_decl) ->
       if List.mem ftd.Ast.ft_name used then None
       else
         Some
           (diag input meta_unused_ft ~pos:ftd.Ast.ft_pos
              "flowtype %S is declared but no DPort, relay or signal payload \
               uses it"
              ftd.Ast.ft_name))
    model.Ast.m_flowtypes

let meta_unused_proto =
  { code = "UMH031"; severity = Diagnostic.Warning;
    title = "unused protocol";
    paper = "Table 1 (SPorts speak protocols)" }

let check_unused_protocols input =
  let model = input.checked.Typecheck.model in
  let used =
    List.concat_map
      (fun (s : Ast.streamer_decl) ->
         List.map (fun (sp : Ast.sport_decl) -> sp.Ast.sp_proto) s.Ast.s_sports)
      model.Ast.m_streamers
    @ List.concat_map
        (fun (c : Ast.capsule_decl) ->
           List.map (fun (_, proto, _, _) -> proto) c.Ast.c_ports)
        model.Ast.m_capsules
  in
  List.filter_map
    (fun (p : Ast.protocol_decl) ->
       if List.mem p.Ast.proto_name used then None
       else
         Some
           (diag input meta_unused_proto ~pos:p.Ast.proto_pos
              "protocol %S is declared but no SPort or capsule port speaks it"
              p.Ast.proto_name))
    model.Ast.m_protocols

let meta_unlinked_sport =
  { code = "UMH032"; severity = Diagnostic.Warning;
    title = "unlinked SPort";
    paper = "R4 (streamers talk to capsules only via SPort links)" }

let check_unlinked_sports input =
  let model = input.checked.Typecheck.model in
  match model.Ast.m_system with
  | None -> []
  | Some sys ->
    let linked iname sport =
      List.exists
        (function
          | Ast.Clink { cl_streamer = (si, sp); _ } ->
            String.equal si iname && String.equal sp sport
          | Ast.Cflow _ -> false)
        sys.Ast.sys_connections
    in
    List.concat_map
      (function
        | Ast.Istreamer { iname; iclass; _ } ->
          (match find_streamer model iclass with
           | None -> []
           | Some s ->
             List.filter_map
               (fun (sp : Ast.sport_decl) ->
                  if linked iname sp.Ast.sp_name then None
                  else
                    Some
                      (diag input meta_unlinked_sport ~pos:sp.Ast.sp_pos
                         ~rule:"R4"
                         "SPort %s.%s is not linked to any capsule port — \
                          emitted signals are dropped and strategies never \
                          trigger"
                         iname sp.Ast.sp_name))
               s.Ast.s_sports)
        | Ast.Icapsule _ | Ast.Irelay _ -> [])
      sys.Ast.sys_instances

let meta_unheard_signal =
  { code = "UMH033"; severity = Diagnostic.Warning;
    title = "guard signal unhandled by peer";
    paper = "R4 (SPort signals drive the peer statechart)" }

let check_unheard_signals input =
  let model = input.checked.Typecheck.model in
  match model.Ast.m_system with
  | None -> []
  | Some sys ->
    let streamer_class iname =
      List.find_map
        (function
          | Ast.Istreamer { iname = n; iclass; _ } when String.equal n iname ->
            find_streamer model iclass
          | Ast.Istreamer _ | Ast.Icapsule _ | Ast.Irelay _ -> None)
        sys.Ast.sys_instances
    in
    let capsule_class iname =
      List.find_map
        (function
          | Ast.Icapsule { iname = n; iclass; _ } when String.equal n iname ->
            find_capsule model iclass
          | Ast.Istreamer _ | Ast.Icapsule _ | Ast.Irelay _ -> None)
        sys.Ast.sys_instances
    in
    List.concat_map
      (function
        | Ast.Clink { cl_streamer = (si, sp); cl_capsule = (ci, _); _ } ->
          (match (streamer_class si, capsule_class ci) with
           | Some s, Some c ->
             let triggers = List.concat_map capsule_triggers c.Ast.c_states in
             List.filter_map
               (fun (g : Ast.guard_decl) ->
                  if
                    (not (String.equal g.Ast.g_sport sp))
                    || List.mem g.Ast.g_signal triggers
                  then None
                  else
                    Some
                      (diag input meta_unheard_signal ~pos:g.Ast.g_pos
                         ~rule:"R4"
                         "signal %S emitted via %s.%s is never a trigger in \
                          capsule %S — the crossing is detected and then \
                          ignored"
                         g.Ast.g_signal si sp c.Ast.c_name))
               s.Ast.s_guards
           | _, _ -> [])
        | Ast.Cflow _ -> [])
      sys.Ast.sys_connections

(* ---------------------------------------------------------------- *)
(* UMH04x — deployment                                              *)
(* ---------------------------------------------------------------- *)

let meta_rate =
  { code = "UMH040"; severity = Diagnostic.Warning;
    title = "rate mismatch on a flow";
    paper = "§5 (one thread per streamer, declared tick rates)" }

let check_rates input =
  match model_of input with
  | None -> []
  | Some b ->
    let flows = Dataflow.Graph.flow_list b.Analysis.Model.graph in
    List.filter_map
      (fun ((sn, _), (dn, dp)) ->
         match List.assoc_opt dn b.Analysis.Model.periods with
         | None -> None
         | Some consumer_period ->
           (match Analysis.Model.producer b sn with
            | Some (pn, producer_period)
              when producer_period < consumer_period *. (1. -. 1e-9)
                   && not (String.equal pn dn) ->
              let pos = List.assoc_opt (dn, dp) b.Analysis.Model.flow_pos in
              Some
                (diag input meta_rate ?pos
                   "fast producer into slow consumer: %s ticks every %gs but \
                    %s reads %s.%s only every %gs — intermediate samples are \
                    overwritten unread"
                   pn producer_period dn dn dp consumer_period)
            | Some _ | None -> None))
      flows

let meta_sched =
  { code = "UMH041"; severity = Diagnostic.Warning;
    title = "thread set may be unschedulable";
    paper = "§5 / E5 (capsules and streamers on different threads)" }

let check_schedulability input =
  match model_of input with
  | None -> []
  | Some b ->
    if b.Analysis.Model.periods = [] then []
    else
      let tasks = Hybrid.Threading.tasks_for b.Analysis.Model.periods in
      let r = Hybrid.Threading.analyze tasks in
      if r.Hybrid.Threading.rm_exact && r.Hybrid.Threading.edf_ok
         && r.Hybrid.Threading.utilization <= 1.0
      then []
      else
        let pos =
          match input.checked.Typecheck.model.Ast.m_system with
          | Some sys -> Some sys.Ast.sys_pos
          | None -> None
        in
        [ diag input meta_sched ?pos
            "deployment of %d streamer threads may be unschedulable under \
             the default wcet model: U=%.2f, RM response-time analysis %s, \
             EDF %s (try `umh sched` with measured wcets)"
            (List.length b.periods) r.Hybrid.Threading.utilization
            (if r.Hybrid.Threading.rm_exact then "passes" else "fails")
            (if r.Hybrid.Threading.edf_ok then "passes" else "fails") ]

(* ---------------------------------------------------------------- *)
(* UMH042-UMH046 — exact timing analysis (Analysis.Rta)             *)
(* ---------------------------------------------------------------- *)

let task_pos (v : Analysis.Rta.verdict) =
  let p = v.Analysis.Rta.v_task.Analysis.Taskset.pos in
  if p.Ast.line > 0 then Some p else None

(* Shard-level diagnostics anchor to the first member task's declaration. *)
let shard_pos (s : Analysis.Shard.shard) =
  List.find_map task_pos s.Analysis.Shard.rta.Analysis.Rta.verdicts

let over_shards input f =
  match report_of input with
  | None -> []
  | Some rep ->
    List.concat_map (fun s -> f rep s) rep.Analysis.Report.shard.Analysis.Shard.shards

let meta_deadline_miss =
  { code = "UMH042"; severity = Diagnostic.Error;
    title = "deadline miss under every scheduling policy";
    paper = "§5 / E5 (response-time analysis of the thread assignment)" }

let check_deadline_miss input =
  over_shards input
    (fun _ (s : Analysis.Shard.shard) ->
       if s.Analysis.Shard.feasible then []
       else
         match Analysis.Rta.misses s.Analysis.Shard.rta with
         | [] ->
           [ diag input meta_deadline_miss ?pos:(shard_pos s)
               "shard %d (utilization %.2f) is not feasible under any \
                scheduling policy"
               s.Analysis.Shard.shard_id
               s.Analysis.Shard.rta.Analysis.Rta.utilization ]
         | misses ->
           List.map
             (fun (v : Analysis.Rta.verdict) ->
                let task = v.Analysis.Rta.v_task.Analysis.Taskset.task in
                diag input meta_deadline_miss ?pos:(task_pos v)
                  "task %s misses its deadline under every policy: worst-case \
                   response %s vs deadline %gs (period %gs, shard %d \
                   infeasible at utilization %.2f)"
                  task.Rt.Task.name
                  (match v.Analysis.Rta.v_response with
                   | Rt.Rm.Converged r -> Printf.sprintf "%gs" r
                   | Rt.Rm.Diverges r -> Printf.sprintf "beyond %gs" r)
                  task.Rt.Task.deadline task.Rt.Task.period
                  s.Analysis.Shard.shard_id
                  s.Analysis.Shard.rta.Analysis.Rta.utilization)
             misses)

let meta_rm_miss =
  { code = "UMH043"; severity = Diagnostic.Warning;
    title = "deadline miss under RM only";
    paper = "§5 / E5 (RM vs EDF on the same shard)" }

let check_rm_miss input =
  over_shards input
    (fun _ (s : Analysis.Shard.shard) ->
       if not s.Analysis.Shard.feasible then []
       else
         List.map
           (fun (v : Analysis.Rta.verdict) ->
              let task = v.Analysis.Rta.v_task.Analysis.Taskset.task in
              diag input meta_rm_miss ?pos:(task_pos v)
                "task %s misses its deadline under rate-monotonic priorities \
                 (worst-case response %s vs deadline %gs) though shard %d \
                 stays EDF-feasible — schedule this shard EDF or repartition"
                task.Rt.Task.name
                (match v.Analysis.Rta.v_response with
                 | Rt.Rm.Converged r -> Printf.sprintf "%gs" r
                 | Rt.Rm.Diverges r -> Printf.sprintf "beyond %gs" r)
                task.Rt.Task.deadline s.Analysis.Shard.shard_id)
           (Analysis.Rta.misses s.Analysis.Shard.rta))

let meta_above_ll =
  { code = "UMH044"; severity = Diagnostic.Info;
    title = "utilization above the Liu-Layland bound";
    paper = "§5 (the LL bound is sufficient, not necessary)" }

let check_above_ll input =
  over_shards input
    (fun _ (s : Analysis.Shard.shard) ->
       let r = s.Analysis.Shard.rta in
       if
         r.Analysis.Rta.rm_ok
         && List.length r.Analysis.Rta.verdicts >= 2
         && r.Analysis.Rta.utilization > r.Analysis.Rta.ll_bound +. 1e-9
       then
         [ diag input meta_above_ll ?pos:(shard_pos s)
             "shard %d runs at utilization %.3f, above the Liu-Layland bound \
              %.3f — the quick test is inconclusive but exact response-time \
              analysis passes"
             s.Analysis.Shard.shard_id r.Analysis.Rta.utilization
             r.Analysis.Rta.ll_bound ]
       else [])

let meta_default_wcet =
  { code = "UMH045"; severity = Diagnostic.Info;
    title = "timing verdicts rest on the default wcet model";
    paper = "§5 (measured costs sharpen the analysis)" }

let check_default_wcet input =
  match report_of input with
  | None -> []
  | Some rep ->
    let ts = rep.Analysis.Report.taskset in
    let defaulted =
      List.filter
        (fun (x : Analysis.Taskset.task) ->
           x.Analysis.Taskset.source = Analysis.Taskset.Default)
        ts.Analysis.Taskset.tasks
    in
    if defaulted = [] then []
    else
      let pos =
        match defaulted with
        | (x : Analysis.Taskset.task) :: _ when x.Analysis.Taskset.pos.Ast.line > 0 ->
          Some x.Analysis.Taskset.pos
        | _ -> None
      in
      [ diag input meta_default_wcet ?pos
          "%d of %d tasks use the default wcet model (%.0f%% of the period) \
           — declare `wcet` budgets or measure with `umh simulate --profile \
           --wcet-out` and pass `--wcet`"
          (List.length defaulted)
          (List.length ts.Analysis.Taskset.tasks)
          (100. *. Analysis.Taskset.default_utilization) ]

let meta_budget =
  { code = "UMH046"; severity = Diagnostic.Error;
    title = "execution budget at or above the period";
    paper = "§5 (a task must fit inside its own period)" }

let check_budget input =
  match report_of input with
  | None -> []
  | Some rep ->
    List.map
      (function
        | Analysis.Taskset.Budget_exceeds_period { name; wcet; period; pos } ->
          let pos = if pos.Ast.line > 0 then Some pos else None in
          diag input meta_budget ?pos
            "task %s has wcet %gs >= its period %gs — it can never meet its \
             deadline"
            name wcet period)
      rep.Analysis.Report.taskset.Analysis.Taskset.issues

(* ---------------------------------------------------------------- *)
(* UMH05x — shard safety (Analysis.Shard)                           *)
(* ---------------------------------------------------------------- *)

let meta_forced_group =
  { code = "UMH050"; severity = Diagnostic.Info;
    title = "feedback cycle forces same-shard placement";
    paper = "Fig. 1 (closed loop through streamers and capsules)" }

let check_forced_groups input =
  match report_of input with
  | None -> []
  | Some rep ->
    let ts = rep.Analysis.Report.taskset in
    List.map
      (fun group ->
         (* Anchor the cycle to its first member that owns a task. *)
         let pos =
           List.find_map
             (fun n ->
                match Analysis.Taskset.find ts (Analysis.Shard.node_name n) with
                | Some (x : Analysis.Taskset.task)
                  when x.Analysis.Taskset.pos.Ast.line > 0 ->
                  Some x.Analysis.Taskset.pos
                | _ -> None)
             group
         in
         diag input meta_forced_group ?pos
           "feedback cycle through {%s} — these entities must share a shard \
            or the loop phases interleave nondeterministically"
           (String.concat ", " (List.map Analysis.Shard.node_name group)))
      rep.Analysis.Report.shard.Analysis.Shard.forced_groups

let meta_interleaving =
  { code = "UMH051"; severity = Diagnostic.Warning;
    title = "nondeterministic signal interleaving at a capsule";
    paper = "R4 / §5 (signals from concurrent streamer threads)" }

let check_interleavings input =
  match report_of input with
  | None -> []
  | Some rep ->
    List.map
      (fun (i : Analysis.Shard.interleaving) ->
         let pos = i.Analysis.Shard.il_pos in
         let pos = if pos.Ast.line > 0 then Some pos else None in
         diag input meta_interleaving ?pos
           "capsule %s hears signals from %d concurrent streamers (%s) — \
            their delivery order is nondeterministic across runs"
           i.Analysis.Shard.il_capsule
           (List.length i.Analysis.Shard.il_sources)
           (String.concat ", " i.Analysis.Shard.il_sources))
      rep.Analysis.Report.shard.Analysis.Shard.interleavings

let meta_race =
  { code = "UMH052"; severity = Diagnostic.Warning;
    title = "write-write race on a strategy parameter";
    paper = "R4 (strategies rewrite streamer parameters)" }

let check_races input =
  match report_of input with
  | None -> []
  | Some rep ->
    List.map
      (fun (r : Analysis.Shard.race) ->
         let pos = r.Analysis.Shard.race_pos in
         let pos = if pos.Ast.line > 0 then Some pos else None in
         diag input meta_race ?pos
           "parameter %s.%s is rewritten by strategies triggered from %d \
            capsules (%s) — the surviving value depends on delivery order"
           r.Analysis.Shard.race_role r.Analysis.Shard.race_param
           (List.length r.Analysis.Shard.race_senders)
           (String.concat ", " r.Analysis.Shard.race_senders))
      rep.Analysis.Report.shard.Analysis.Shard.races

let meta_partition =
  { code = "UMH053"; severity = Diagnostic.Info;
    title = "suggested shard partition";
    paper = "§5 (deployment onto concurrent shards)" }

let check_partition input =
  match report_of input with
  | None -> []
  | Some rep ->
    let shards = rep.Analysis.Report.shard.Analysis.Shard.shards in
    if List.length shards < 2 then []
    else
      [ diag input meta_partition
          ?pos:(List.find_map shard_pos shards)
          "the workload partitions into %d shards (%d cross-shard \
           interactions) — export the placement with `umh analyze \
           --partition-out`"
          (List.length shards)
          (List.length rep.Analysis.Report.shard.Analysis.Shard.cross_edges) ]

let meta_thin_margin =
  { code = "UMH054"; severity = Diagnostic.Warning;
    title = "breakdown margin under 5%";
    paper = "§5 (breakdown utilization as a robustness measure)" }

let breakdown_margin_floor = 1.05

let check_thin_margin input =
  over_shards input
    (fun _ (s : Analysis.Shard.shard) ->
       let r = s.Analysis.Shard.rta in
       if
         s.Analysis.Shard.feasible && r.Analysis.Rta.rm_ok
         && r.Analysis.Rta.verdicts <> []
         && r.Analysis.Rta.breakdown < breakdown_margin_floor
       then
         [ diag input meta_thin_margin ?pos:(shard_pos s)
             "shard %d survives only a %.1f%% uniform wcet inflation before \
              a deadline miss — any measurement noise erases the margin"
             s.Analysis.Shard.shard_id
             (100. *. (r.Analysis.Rta.breakdown -. 1.)) ]
       else [])

(* ---------------------------------------------------------------- *)
(* Registry                                                         *)
(* ---------------------------------------------------------------- *)

let meta_syntax =
  { code = "UMH001"; severity = Diagnostic.Error;
    title = "syntax error"; paper = "textual front end" }

let meta_typecheck =
  { code = "UMH002"; severity = Diagnostic.Error;
    title = "well-formedness violation"; paper = "rules R1-R8, Figs. 2-3" }

let meta_typecheck_warn =
  { code = "UMH003"; severity = Diagnostic.Warning;
    title = "well-formedness warning"; paper = "rules R1-R8, Figs. 2-3" }

(* Applied by `umh simulate --shards-from` when it validates a partition
   plan file against the model (stale model_hash, split feedback SCC,
   split runtime co-location group) — registered here so --select /
   --ignore and the code listing know it. *)
let meta_shard_plan =
  { code = "UMH055"; severity = Diagnostic.Error;
    title = "invalid shard plan"; paper = "multicore deployment, Sec. 5" }

let semantic =
  [ (meta_loop, check_loop);
    (meta_orphan_in, check_orphan_inputs);
    (meta_orphan_out, check_orphan_outputs);
    (meta_unreachable, check_unreachable);
    (meta_dead, check_dead_transitions);
    (meta_nondet, check_nondeterminism);
    (meta_sink, check_sinks);
    (meta_unused_ft, check_unused_flowtypes);
    (meta_unused_proto, check_unused_protocols);
    (meta_unlinked_sport, check_unlinked_sports);
    (meta_unheard_signal, check_unheard_signals);
    (meta_rate, check_rates);
    (meta_sched, check_schedulability);
    (meta_deadline_miss, check_deadline_miss);
    (meta_rm_miss, check_rm_miss);
    (meta_above_ll, check_above_ll);
    (meta_default_wcet, check_default_wcet);
    (meta_budget, check_budget);
    (meta_forced_group, check_forced_groups);
    (meta_interleaving, check_interleavings);
    (meta_race, check_races);
    (meta_partition, check_partition);
    (meta_thin_margin, check_thin_margin) ]

let registry =
  meta_syntax :: meta_typecheck :: meta_typecheck_warn :: meta_shard_plan
  :: List.map fst semantic

let find_meta code =
  List.find_opt (fun m -> String.equal m.code code) registry

let is_known_code code = find_meta code <> None
