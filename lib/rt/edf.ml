let utilization_test tasks = Task.total_utilization tasks <= 1. +. 1e-12

let demand_bound tasks t =
  List.fold_left
    (fun acc task ->
       let open Task in
       let jobs = Float.floor ((t -. task.deadline) /. task.period) +. 1. in
       if jobs <= 0. then acc else acc +. (jobs *. task.wcet))
    0. tasks

let check_points tasks ~horizon =
  let points =
    List.concat_map
      (fun task ->
         let open Task in
         let rec collect k acc =
           let d = task.deadline +. (float_of_int k *. task.period) in
           if d > horizon then acc else collect (k + 1) (d :: acc)
         in
         collect 0 [])
      tasks
  in
  List.sort_uniq Float.compare points

let implicit_deadlines tasks =
  List.for_all (fun t -> Float.abs (t.Task.deadline -. t.Task.period) < 1e-12) tasks

let default_horizon tasks =
  let u = Task.total_utilization tasks in
  let la =
    (* Busy-period style bound for constrained deadlines; guard the
       division when utilization approaches 1. *)
    if u >= 1. -. 1e-9 then
      List.fold_left (fun acc t -> acc +. t.Task.period) 0. tasks *. 4.
    else
      List.fold_left
        (fun acc t -> acc +. ((t.Task.period -. t.Task.deadline) *. Task.utilization t))
        0. tasks
      /. (1. -. u)
  in
  let max_period =
    List.fold_left (fun acc t -> Float.max acc t.Task.period) 0. tasks
  in
  Float.max la (2. *. max_period)

let first_violation ?horizon tasks =
  if tasks = [] || implicit_deadlines tasks then None
  else begin
    let bound =
      match horizon with Some h -> h | None -> default_horizon tasks
    in
    List.find_map
      (fun t ->
         let d = demand_bound tasks t in
         if d <= t +. 1e-9 then None else Some (t, d))
      (check_points tasks ~horizon:bound)
  end

let schedulable ?horizon tasks =
  if tasks = [] then true
  else if not (utilization_test tasks) then false
  else if implicit_deadlines tasks then true
  else first_violation ?horizon tasks = None
