(** Preemptive uniprocessor schedule simulation.

    Event-driven (releases and completions), continuous time. Used to
    cross-check the analytic RM/EDF tests and to visualize where a thread
    assignment starts missing deadlines. *)

type policy = Fixed_priority | Edf

type segment = {
  task : string;
  job : int;        (** 0-based job index of that task *)
  start : float;
  finish : float;
}

type miss = {
  miss_task : string;
  miss_job : int;
  miss_deadline : float;
  completion : float option;  (** [None] = still unfinished at the horizon *)
}

type result = {
  segments : segment list;   (** chronological execution timeline *)
  misses : miss list;
  busy_time : float;
  horizon : float;
}

val simulate : policy -> Task.t list -> horizon:float -> result
(** Raises [Invalid_argument] on a non-positive or non-finite horizon.
    Jobs released before the horizon are tracked to completion or
    recorded as misses. The empty task set yields an empty, fully idle
    result. *)

val miss_count : result -> int
val utilization_observed : result -> float
