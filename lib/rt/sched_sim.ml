type policy = Fixed_priority | Edf

type segment = {
  task : string;
  job : int;
  start : float;
  finish : float;
}

type miss = {
  miss_task : string;
  miss_job : int;
  miss_deadline : float;
  completion : float option;
}

type result = {
  segments : segment list;
  misses : miss list;
  busy_time : float;
  horizon : float;
}

type job = {
  jtask : Task.t;
  jindex : int;
  release : float;
  abs_deadline : float;
  priority : int;            (* RM priority for fixed-priority policy *)
  mutable remaining : float;
}

let jobs_of tasks ~horizon =
  let prio = Rm.priorities tasks in
  let priority_of task =
    match List.find_opt (fun (t, _) -> String.equal t.Task.name task.Task.name) prio with
    | Some (_, p) -> p
    | None -> max_int
  in
  List.concat_map
    (fun task ->
       let open Task in
       let p = priority_of task in
       let rec gen k acc =
         let release = task.phase +. (float_of_int k *. task.period) in
         if release >= horizon then acc
         else
           gen (k + 1)
             ({ jtask = task; jindex = k; release;
                abs_deadline = release +. task.deadline;
                priority = p; remaining = task.wcet }
              :: acc)
       in
       gen 0 [])
    tasks

let pick policy ready =
  let better a b =
    match policy with
    | Fixed_priority ->
      if a.priority <> b.priority then a.priority < b.priority
      else a.release < b.release
    | Edf ->
      if a.abs_deadline <> b.abs_deadline then a.abs_deadline < b.abs_deadline
      else String.compare a.jtask.Task.name b.jtask.Task.name < 0
  in
  match ready with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun best j -> if better j best then j else best) first rest)

let simulate policy tasks ~horizon =
  if not (Float.is_finite horizon) || horizon <= 0. then
    invalid_arg "Rt.Sched_sim.simulate: horizon must be finite and positive";
  let all = jobs_of tasks ~horizon in
  let segments = ref [] in
  let busy = ref 0. in
  let eps = 1e-12 in
  let rec loop now =
    if now >= horizon -. eps then ()
    else begin
      let ready = List.filter (fun j -> j.release <= now +. eps && j.remaining > eps) all in
      let next_release =
        List.fold_left
          (fun acc j -> if j.release > now +. eps then Float.min acc j.release else acc)
          infinity all
      in
      match pick policy ready with
      | None ->
        if next_release = infinity then () else loop (Float.min next_release horizon)
      | Some j ->
        let completion = now +. j.remaining in
        let finish = Float.min (Float.min completion next_release) horizon in
        let ran = finish -. now in
        j.remaining <- j.remaining -. ran;
        busy := !busy +. ran;
        segments := { task = j.jtask.Task.name; job = j.jindex; start = now; finish }
                    :: !segments;
        loop finish
    end
  in
  loop 0.;
  let completion_of j =
    (* Completion = finish of the job's last segment when fully executed. *)
    if j.remaining > eps then None
    else
      List.fold_left
        (fun acc seg ->
           if String.equal seg.task j.jtask.Task.name && seg.job = j.jindex then
             match acc with
             | Some f -> Some (Float.max f seg.finish)
             | None -> Some seg.finish
           else acc)
        None !segments
  in
  let misses =
    List.filter_map
      (fun j ->
         if j.abs_deadline > horizon +. eps then None
         else
           match completion_of j with
           | Some f when f <= j.abs_deadline +. eps -> None
           | (Some _ | None) as completion ->
             Some { miss_task = j.jtask.Task.name; miss_job = j.jindex;
                    miss_deadline = j.abs_deadline; completion })
      all
  in
  { segments = List.rev !segments; misses; busy_time = !busy; horizon }

let miss_count r = List.length r.misses
let utilization_observed r = r.busy_time /. r.horizon
