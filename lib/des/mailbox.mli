(** Asynchronous message queues with delivery latency.

    This is the "communication mechanism of threads" the paper relies on:
    capsules and streamers live on different threads and exchange messages
    through channels with a (configurable) transport delay. A mailbox
    owns a FIFO of delivered messages; [send] schedules the delivery on
    the engine after the mailbox's latency. *)

type 'a t

val create : Engine.t -> ?latency:float -> string -> 'a t
(** [latency] defaults to 0 (same-thread dispatch). *)

val name : 'a t -> string
val latency : 'a t -> float
val set_latency : 'a t -> float -> unit

val set_listener : 'a t -> ('a t -> unit) -> unit
(** Called (at delivery time) each time a message lands in the FIFO. The
    listener typically schedules the owner's run-to-completion step. *)

val clear_listener : 'a t -> unit

val send_from : 'a t -> sent:float -> delay:float -> 'a -> unit
(** Like {!send_delayed}, but anchored at the (earlier) instant [sent]
    rather than now: delivery lands at exactly [sent +. (latency +.
    delay)] — the bit-identical timestamp a [send_delayed] at [sent]
    would have produced. Raises [Invalid_argument] when that instant is
    before the engine clock. Used by the sharded runtime to replay
    cross-domain sends. *)

val send : 'a t -> 'a -> unit
(** Enqueue for delivery after [latency]. *)

val send_delayed : 'a t -> delay:float -> 'a -> unit
(** Enqueue for delivery after [latency +. delay]. *)

val pop : 'a t -> 'a option
(** Oldest delivered message, if any. *)

val peek : 'a t -> 'a option
val length : 'a t -> int
(** Delivered (not yet popped) messages. *)

val in_flight : 'a t -> int
(** Sent but not yet delivered. *)

val sent_total : 'a t -> int
val delivered_total : 'a t -> int
