(** Discrete-event simulation engine: a virtual clock plus an event queue
    of callbacks. Everything in the repository that needs simulated time —
    capsule run-to-completion, streamer thread ticks, channel latency —
    runs on one of these. *)

type t

type handle
(** Cancellation token for one scheduled callback. *)

val create : ?start:float -> unit -> t
(** Fresh engine; the clock starts at [start] (default 0). *)

val now : t -> float
(** Current simulated time. *)

val schedule_at : t -> ?priority:int -> time:float -> (unit -> unit) -> handle
(** Run the callback when the clock reaches [time]. Scheduling in the
    past or at a NaN time raises [Invalid_argument]. Lower priority runs
    first among equal times; ties break in scheduling order. *)

val schedule : t -> ?priority:int -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] is [schedule_at t ~time:(now t +. delay) f];
    negative or NaN delays raise [Invalid_argument]. *)

val cancel : handle -> unit
(** Idempotent. *)

val pending : t -> int
(** Live scheduled callbacks (diagnostics only, O(n)). *)

val queue_depth : t -> int
(** Same value as [pending], maintained incrementally — O(1). This is
    what the "des.queue_depth" gauge and trace counter report. *)

val next_time : t -> float option
(** Timestamp of the next pending callback. *)

val step : t -> bool
(** Execute the next pending callback, advancing the clock to its time.
    Returns [false] when the queue is empty. *)

val run_until : t -> float -> int
(** Execute every callback scheduled at or before the bound (including
    callbacks those callbacks schedule), then advance the clock to the
    bound. Returns the number of callbacks executed. *)

val run_to_completion : t -> ?max_events:int -> unit -> int
(** Execute until the queue drains; raises [Failure] if [max_events]
    (default 10_000_000) is exceeded — a runaway-model backstop. *)

val events_executed : t -> int
(** Total callbacks executed since creation. *)
