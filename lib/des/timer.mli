(** Timer service on top of the engine — the UML-RT "Time service".

    The paper notes that timing in UML-RT is unpredictable; the extension's
    [Time] stereotype (a continuous clock) lives in the core library, while
    this module provides the conventional discrete timers capsules use. *)

type t

val one_shot : Engine.t -> ?name:string -> delay:float -> (unit -> unit) -> t
(** Fire once after [delay]. Negative or NaN delays raise
    [Invalid_argument]; [name] labels the timer in error messages. *)

val periodic :
  Engine.t -> ?name:string -> ?phase:float -> period:float -> (int -> unit)
  -> t
(** Fire forever every [period] (first firing after [phase], default one
    full period), passing the 0-based tick index. Raises
    [Invalid_argument] when [period <= 0], or when [period] or [phase]
    is NaN; [name] labels the timer in error messages. *)

val periodic_jittered :
  Engine.t -> ?name:string -> ?phase:float -> period:float
  -> jitter:(int -> float) -> (int -> unit) -> t
(** Periodic timer whose k-th firing is displaced by [jitter k] (clamped
    so time never goes backwards) — models release jitter of an RTOS
    periodic task. A NaN jitter raises [Invalid_argument] naming the
    timer and the release index instead of corrupting the schedule. *)

val cancel : t -> unit
(** Stop the timer; idempotent. Pending firings are dropped. *)

val is_active : t -> bool

val fired : t -> int
(** Number of firings so far. *)
