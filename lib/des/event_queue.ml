(* Bucketed priority queue. The heap used to hold one node per event;
   on timer-driven workloads where many streamers share a tick grid
   (the E3 scaling benchmark: hundreds of entries at the same instant)
   every push/pop paid O(log n) sifts through a deep heap of mostly
   equal keys — the per-streamer cost cliff at 256+ streamers in
   BENCH_PR6. Now the heap holds one node per distinct (time, priority)
   key and events at the same key live in an append-only FIFO array
   inside the bucket, so the aligned-grid workload degenerates to a
   handful of buckets with O(1) amortised push/pop regardless of the
   streamer count. Pop order is still exactly (time, priority,
   insertion sequence): within a bucket, appends happen in sequence
   order; across buckets with equal keys (possible when a bucket
   empties and its key is scheduled again) the bucket creation index
   breaks the tie, and every entry of an older bucket predates every
   entry of a younger one with the same key because buckets are only
   appended to while they are the push cache.

   The payload lives INSIDE its entry as a mutable option and is nulled
   the moment the entry leaves the live set: at [pop], and — since
   deletion is lazy, so a cancelled entry stays in its bucket until it
   reaches the front — also at [cancel]. A cancelled far-future event
   therefore cannot pin a large payload for the rest of the run. Freed
   bucket slots point at a per-queue payload-free dummy, and emptied
   buckets leave the heap immediately, so popped storage really is
   collectable. *)
type 'a entry = {
  time : float;
  priority : int;  [@warning "-69"]  (* carried for diagnostics *)
  seq : int;  [@warning "-69"]  (* global insertion order, for diagnostics *)
  mutable cancelled : bool;
  mutable popped : bool;
  mutable payload : 'a option;
  live : int ref;  (* the owning queue's live-entry counter *)
}

type 'a handle = 'a entry

type 'a bucket = {
  b_time : float;
  b_priority : int;
  b_seq : int;  (* creation index: tie-break between equal-key buckets *)
  mutable items : 'a entry array;  (* [head, used) are pending, FIFO *)
  mutable used : int;
  mutable head : int;
  mutable in_heap : bool;  (* guards the push cache against stale hits *)
}

type 'a t = {
  dummy : 'a entry;          (* filler for freed item slots *)
  dummy_bucket : 'a bucket;  (* filler for freed heap slots *)
  mutable heap : 'a bucket array;  (* prefix [0, size) is the heap *)
  mutable size : int;
  mutable next_seq : int;
  mutable next_bseq : int;
  mutable cache : 'a bucket; (* last bucket pushed into *)
  live : int ref;  (* live (scheduled, not cancelled, not popped) entries *)
}

let min_capacity = 8
let min_items = 4

let create () =
  let dummy =
    { time = neg_infinity; priority = 0; seq = -1; cancelled = true;
      popped = true; payload = None; live = ref 0 }
  in
  let dummy_bucket =
    { b_time = neg_infinity; b_priority = 0; b_seq = -1; items = [||];
      used = 0; head = 0; in_heap = false }
  in
  { dummy; dummy_bucket; heap = [||]; size = 0; next_seq = 0; next_bseq = 0;
    cache = dummy_bucket; live = ref 0 }

let live_count t = !(t.live)

let capacity t = Array.length t.heap

(* Cancelled entries stay in their bucket until they reach the front
   (lazy deletion), so [length] walks everything — it is only used by
   tests and diagnostics, never on the hot path. *)
let length t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    let b = t.heap.(i) in
    for j = b.head to b.used - 1 do
      if not b.items.(j).cancelled then incr n
    done
  done;
  !n

let before a b =
  a.b_time < b.b_time
  || (a.b_time = b.b_time
      && (a.b_priority < b.b_priority
          || (a.b_priority = b.b_priority && a.b_seq < b.b_seq)))

let swap t i j =
  let b = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- b

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let resize t cap =
  let heap' = Array.make cap t.dummy_bucket in
  Array.blit t.heap 0 heap' 0 t.size;
  t.heap <- heap'

let heap_push t b =
  if t.size >= Array.length t.heap then
    resize t (if Array.length t.heap = 0 then min_capacity
              else 2 * Array.length t.heap);
  t.heap.(t.size) <- b;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let push t ~time ?(priority = 0) payload =
  if Float.is_nan time then invalid_arg "Des.Event_queue.push: NaN time";
  let entry =
    { time; priority; seq = t.next_seq; cancelled = false; popped = false;
      payload = Some payload; live = t.live }
  in
  t.next_seq <- t.next_seq + 1;
  incr t.live;
  let b =
    let c = t.cache in
    if c.in_heap && c.b_time = time && c.b_priority = priority then c
    else begin
      let b =
        { b_time = time; b_priority = priority; b_seq = t.next_bseq;
          items = Array.make min_items t.dummy; used = 0; head = 0;
          in_heap = true }
      in
      t.next_bseq <- t.next_bseq + 1;
      heap_push t b;
      t.cache <- b;
      b
    end
  in
  if b.used >= Array.length b.items then begin
    let items' = Array.make (2 * Array.length b.items) t.dummy in
    Array.blit b.items 0 items' 0 b.used;
    b.items <- items'
  end;
  b.items.(b.used) <- entry;
  b.used <- b.used + 1;
  entry

let cancel entry =
  if not entry.cancelled && not entry.popped then begin
    entry.cancelled <- true;
    entry.payload <- None;
    decr entry.live
  end

let is_cancelled entry = entry.cancelled

(* Remove the root bucket: move the last bucket onto it and clear the
   freed slot so the bucket (and its item storage) is collectable. When
   occupancy falls below a quarter, halve the array so a burst of
   scheduling does not pin its high-water capacity forever. *)
let remove_top t =
  let b = t.heap.(0) in
  b.in_heap <- false;
  t.size <- t.size - 1;
  if t.size > 0 then t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- t.dummy_bucket;
  if t.size > 0 then sift_down t 0;
  let cap = Array.length t.heap in
  if cap > min_capacity && t.size < cap / 4 then
    resize t (let c = cap / 2 in if c < min_capacity then min_capacity else c)

(* Advance the root bucket past cancelled entries, dropping the bucket
   when it empties, until the root's front entry is live (or the heap
   is empty). *)
let rec drop_cancelled t =
  if t.size > 0 then begin
    let b = t.heap.(0) in
    while b.head < b.used && b.items.(b.head).cancelled do
      b.items.(b.head) <- t.dummy;
      b.head <- b.head + 1
    done;
    if b.head >= b.used then begin
      remove_top t;
      drop_cancelled t
    end
  end

let is_empty t =
  drop_cancelled t;
  t.size = 0

let peek_time t =
  drop_cancelled t;
  if t.size = 0 then None else Some t.heap.(0).b_time

let pop t =
  drop_cancelled t;
  if t.size = 0 then None
  else begin
    let b = t.heap.(0) in
    let e = b.items.(b.head) in
    b.items.(b.head) <- t.dummy;
    b.head <- b.head + 1;
    if b.head >= b.used then remove_top t;
    let payload =
      match e.payload with
      | Some p -> p
      | None -> assert false  (* live entries always hold payloads *)
    in
    e.popped <- true;
    e.payload <- None;
    decr t.live;
    Some (e.time, payload)
  end

let drain_until t bound =
  let rec loop acc =
    match peek_time t with
    | Some time when time <= bound ->
      (match pop t with
       | Some item -> loop (item :: acc)
       | None -> List.rev acc)
    | Some _ | None -> List.rev acc
  in
  loop []
