(** Adaptive embedded Runge–Kutta methods with PI-style step control.

    Used by streamer solvers when the plant stiffness is unknown: the
    solver keeps the local error under [rtol]/[atol] and reports its own
    work, so the hybrid engine can batch integration between discrete
    events without guessing a step size. *)

type scheme =
  | Dormand_prince  (** RK5(4)7M, the MATLAB [ode45] pair *)
  | Fehlberg        (** RKF4(5) *)

val scheme_name : scheme -> string

type control = {
  rtol : float;       (** relative tolerance (default 1e-6) *)
  atol : float;       (** absolute tolerance (default 1e-9) *)
  dt_min : float;     (** smallest accepted step (default 1e-12) *)
  dt_max : float;     (** largest accepted step (default infinity) *)
  safety : float;     (** step-growth safety factor (default 0.9) *)
  max_steps : int;    (** hard cap on accepted+rejected steps (default 1_000_000) *)
}

val default_control : control

val validate_control : control -> unit
(** Raises [Invalid_argument] on NaN or non-positive tolerances/steps,
    [dt_min > dt_max], [safety <= 0.], both tolerances zero, or
    [max_steps <= 0]. Called by [integrate]/[trajectory] and by
    [Integrator.create] for adaptive methods, so a bad control fails at
    construction instead of silently stalling mid-run. *)

type stats = {
  accepted : int;
  rejected : int;
  last_dt : float;  (** step size in force when integration finished *)
}

exception Step_underflow of float
(** Raised (with the current time) when error control would need a step
    below [dt_min]. *)

exception Too_many_steps of float
(** Raised (with the current time) when [max_steps] is exhausted. *)

val step :
  scheme -> System.t -> t:float -> dt:float -> float array
  -> float array * float
(** [step scheme sys ~t ~dt y] performs one raw embedded step and returns
    [(y_high, err_norm)] where [err_norm] is the weighted RMS error
    estimate against tolerance 1 — values <= 1 mean "acceptable" under the
    default control. *)

val integrate :
  ?scheme:scheme -> ?control:control -> System.t
  -> t0:float -> t1:float -> float array -> float array * stats
(** Integrate from [t0] to [t1], adapting the step. *)

val trajectory :
  ?scheme:scheme -> ?control:control -> System.t
  -> t0:float -> t1:float -> float array -> (float * float array) list * stats
(** Same, returning every accepted mesh point including [t0]. *)
