(** Stateful integration driver: the numerical engine behind a streamer's
    solver. Holds current time/state, advances on demand, stops early at
    zero crossings. *)

type method_ =
  | Fixed of Fixed.scheme * float        (** scheme and its step size *)
  | Adaptive of Adaptive.scheme * Adaptive.control
  | Implicit of [ `Backward_euler | `Trapezoidal ] * float

val method_name : method_ -> string

type t

val create : ?method_:method_ -> System.t -> t0:float -> float array -> t
(** Default method is [Fixed (Rk4, 1e-3)]. An adaptive method's control
    record is validated here ({!Adaptive.validate_control}), so absurd
    tolerances fail at construction, not mid-run. *)

val time : t -> float
val state : t -> float array
(** A copy of the current state. *)

val state_view : t -> float array
(** The live state array, without copying — read-only by convention, and
    invalidated by {!set_state}. For hot paths that must not allocate. *)

val set_state : t -> float array -> unit
(** Replace the continuous state (used by strategies on mode switches). *)

val reset : t -> t0:float -> float array -> unit
(** Replace both clock and state — the supervisor's restart primitive.
    Unlike {!set_state} alone, this un-strands an integrator left
    mid-interval by a solver fault (step underflow leaves [time] short of
    the requested target, and every retry would replay the same doomed
    interval). *)

val system : t -> System.t

val replace_system : t -> System.t -> unit
(** Swap the equations (strategy switch); dimension must match. *)

val steps_taken : t -> int

type outcome =
  | Reached of float                     (** advanced to the requested time *)
  | Interrupted of Events.crossing       (** stopped at a zero crossing *)

val advance : t -> float -> outcome
(** [advance t target] integrates up to [target] (>= current time). *)

val advance_to : t -> float -> unit
(** Like [advance] ignoring the outcome, but allocation-free for
    fixed-step methods whose system has an in-place rhs
    ({!System.create_inplace}): stage arrays come from a preallocated
    workspace and the state advances in place. Mesh times are computed as
    [now + i*dt] (not accumulated), so results can differ from
    {!advance} in the last ulp. Falls back to {!advance} for other
    methods. *)

val advance_guarded : t -> float -> Events.guard list -> outcome
(** Like {!advance} but stops at the earliest guard crossing; the
    integrator's clock and state are left exactly at the crossing. *)
