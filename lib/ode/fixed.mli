(** Fixed-step explicit Runge–Kutta methods.

    These are the workhorses of the streamer solvers: cheap, predictable
    cost per step, which is what a rate-driven real-time thread wants. *)

type scheme =
  | Euler      (** forward Euler, order 1 *)
  | Midpoint   (** explicit midpoint, order 2 *)
  | Heun       (** Heun / trapezoidal predictor-corrector, order 2 *)
  | Rk4        (** classic Runge–Kutta, order 4 *)

val order : scheme -> int
(** Classical order of accuracy. *)

val scheme_name : scheme -> string
(** Lower-case printable name, e.g. ["rk4"]. *)

val scheme_of_string : string -> scheme option
(** Inverse of {!scheme_name}. *)

val all_schemes : scheme list
(** Every scheme, in increasing order of accuracy. *)

val step : scheme -> System.t -> t:float -> dt:float -> float array -> float array
(** One step of the scheme from state [y] at time [t], returning the state
    at [t +. dt]. Raises [Invalid_argument] if [dt <= 0]. *)

type workspace = {
  wdim : int;
  k1 : float array;
  k2 : float array;
  k3 : float array;
  k4 : float array;
  ytmp : float array;
  tcell : float array;  (** evaluation time handed to the in-place rhs *)
  targ : float array;   (** step start time input to {!step_cells} *)
  harg : float array;   (** step size input to {!step_cells} *)
}
(** Preallocated stage storage for allocation-free stepping. Times travel
    through the 1-element cells so no boxed float crosses a call
    boundary on the hot path. One workspace per solver; never shared. *)

val workspace : dim:int -> workspace

val step_into : scheme -> System.t -> ws:workspace -> t:float -> dt:float
  -> float array -> unit
(** One step, advancing [y] in place. When the system has an in-place rhs
    ({!System.create_inplace}) this performs zero heap allocation and
    agrees bit-for-bit with {!step}; otherwise it falls back to the
    allocating path and copies the result into [y]. *)

val step_cells : scheme -> System.t -> workspace -> float array -> unit
(** Core of {!step_into}: step start time and size are read from
    [ws.targ.(0)] / [ws.harg.(0)] instead of float arguments (so driver
    loops can invoke it without boxing). No argument validation — callers
    are expected to have checked dimensions and [dt] once outside their
    loop. Raises [Invalid_argument] when the system has no in-place
    rhs. *)

val advance_into : scheme -> System.t -> ws:workspace -> t0:float -> t1:float
  -> dt:float -> float array -> int
(** Walk the uniform mesh from [t0] to [t1] in place (final step
    shortened to land on [t1]), returning the number of steps taken.
    Mesh times are computed as [t0 + i*dt] (not accumulated), so
    trajectories can differ from {!integrate} in the last ulp. *)

val integrate :
  scheme -> System.t -> t0:float -> t1:float -> dt:float -> float array -> float array
(** Advance from [t0] to [t1] in uniform steps of at most [dt] (the final
    step is shortened to land exactly on [t1]). *)

val trajectory :
  scheme -> System.t -> t0:float -> t1:float -> dt:float -> float array
  -> (float * float array) list
(** Like {!integrate} but returning every mesh point including [t0]. *)
