type scheme = Dormand_prince | Fehlberg

let scheme_name = function
  | Dormand_prince -> "dormand-prince"
  | Fehlberg -> "fehlberg"

type control = {
  rtol : float;
  atol : float;
  dt_min : float;
  dt_max : float;
  safety : float;
  max_steps : int;
}

let default_control =
  { rtol = 1e-6; atol = 1e-9; dt_min = 1e-12; dt_max = infinity;
    safety = 0.9; max_steps = 1_000_000 }

(* A malformed control record does not fail loudly on its own: NaN
   tolerances poison the error norm (every comparison false → endless
   rejection), [dt_min > dt_max] stalls, [safety <= 0.] collapses every
   step to the 0.2/0.1 clamp. Reject all of it up front. *)
let validate_control c =
  let bad what value =
    invalid_arg
      (Printf.sprintf "Ode.Adaptive: invalid control: %s %g" what value)
  in
  if Float.is_nan c.rtol || c.rtol < 0. then bad "rtol" c.rtol;
  if Float.is_nan c.atol || c.atol < 0. then bad "atol" c.atol;
  if c.rtol = 0. && c.atol = 0. then
    invalid_arg "Ode.Adaptive: invalid control: rtol and atol are both zero";
  if Float.is_nan c.dt_min || c.dt_min <= 0. then bad "dt_min" c.dt_min;
  if Float.is_nan c.dt_max || c.dt_max <= 0. then bad "dt_max" c.dt_max;
  if c.dt_min > c.dt_max then
    invalid_arg
      (Printf.sprintf "Ode.Adaptive: invalid control: dt_min %g > dt_max %g"
         c.dt_min c.dt_max);
  if Float.is_nan c.safety || c.safety <= 0. then bad "safety" c.safety;
  if c.max_steps <= 0 then
    invalid_arg
      (Printf.sprintf "Ode.Adaptive: invalid control: max_steps %d"
         c.max_steps)

type stats = { accepted : int; rejected : int; last_dt : float }

(* Step-control observability, aggregated across every adaptive
   integration in the calling domain (the handles resolve against the
   ambient registry per integration drive, so shard workers count into
   their own registries; three get-or-create lookups per drive are noise
   next to the integration itself). *)
let dt_bounds = Obs.Metrics.log_bounds ~lo:1e-12 ~hi:1e3 ~per_decade:3

exception Step_underflow of float
exception Too_many_steps of float

(* Butcher tableau of an embedded pair: [a] the strictly lower-triangular
   stage matrix, [c] the abscissae, [b_high]/[b_low] the two weight rows,
   [order_low] the order of the less accurate member (drives step control). *)
type tableau = {
  a : float array array;
  c : float array;
  b_high : float array;
  b_low : float array;
  order_low : int;
}

let dormand_prince = {
  c = [| 0.; 1. /. 5.; 3. /. 10.; 4. /. 5.; 8. /. 9.; 1.; 1. |];
  a = [|
    [||];
    [| 1. /. 5. |];
    [| 3. /. 40.; 9. /. 40. |];
    [| 44. /. 45.; -56. /. 15.; 32. /. 9. |];
    [| 19372. /. 6561.; -25360. /. 2187.; 64448. /. 6561.; -212. /. 729. |];
    [| 9017. /. 3168.; -355. /. 33.; 46732. /. 5247.; 49. /. 176.;
       -5103. /. 18656. |];
    [| 35. /. 384.; 0.; 500. /. 1113.; 125. /. 192.; -2187. /. 6784.;
       11. /. 84. |];
  |];
  b_high = [| 35. /. 384.; 0.; 500. /. 1113.; 125. /. 192.;
              -2187. /. 6784.; 11. /. 84.; 0. |];
  b_low = [| 5179. /. 57600.; 0.; 7571. /. 16695.; 393. /. 640.;
             -92097. /. 339200.; 187. /. 2100.; 1. /. 40. |];
  order_low = 4;
}

let fehlberg = {
  c = [| 0.; 1. /. 4.; 3. /. 8.; 12. /. 13.; 1.; 1. /. 2. |];
  a = [|
    [||];
    [| 1. /. 4. |];
    [| 3. /. 32.; 9. /. 32. |];
    [| 1932. /. 2197.; -7200. /. 2197.; 7296. /. 2197. |];
    [| 439. /. 216.; -8.; 3680. /. 513.; -845. /. 4104. |];
    [| -8. /. 27.; 2.; -3544. /. 2565.; 1859. /. 4104.; -11. /. 40. |];
  |];
  b_high = [| 16. /. 135.; 0.; 6656. /. 12825.; 28561. /. 56430.;
              -9. /. 50.; 2. /. 55. |];
  b_low = [| 25. /. 216.; 0.; 1408. /. 2565.; 2197. /. 4104.; -1. /. 5.; 0. |];
  order_low = 4;
}

let tableau_of = function
  | Dormand_prince -> dormand_prince
  | Fehlberg -> fehlberg

let stages tbl sys ~t ~dt y =
  let n = Array.length tbl.c in
  let k = Array.make n [||] in
  for i = 0 to n - 1 do
    let yi = Linalg.copy y in
    for j = 0 to i - 1 do
      Linalg.axpy_into ~dst:yi (dt *. tbl.a.(i).(j)) k.(j)
    done;
    k.(i) <- System.eval sys (t +. (tbl.c.(i) *. dt)) yi
  done;
  k

let combine tbl k ~dt y row =
  let acc = Linalg.copy y in
  Array.iteri (fun i b -> if b <> 0. then Linalg.axpy_into ~dst:acc (dt *. b) k.(i)) row;
  ignore tbl;
  acc

(* Weighted RMS of the difference of the two solutions against the mixed
   absolute/relative tolerance; <= 1 means the step passes. *)
let error_norm ~rtol ~atol y y_high y_low =
  let n = Array.length y in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let scale = atol +. (rtol *. Float.max (Float.abs y.(i)) (Float.abs y_high.(i))) in
    let e = (y_high.(i) -. y_low.(i)) /. scale in
    acc := !acc +. (e *. e)
  done;
  sqrt (!acc /. float_of_int n)

let step scheme sys ~t ~dt y =
  if dt <= 0. then invalid_arg "Ode.Adaptive.step: dt must be positive";
  let tbl = tableau_of scheme in
  let k = stages tbl sys ~t ~dt y in
  let y_high = combine tbl k ~dt y tbl.b_high in
  let y_low = combine tbl k ~dt y tbl.b_low in
  let err = error_norm ~rtol:default_control.rtol ~atol:default_control.atol y y_high y_low in
  (y_high, err)

let drive ?(scheme = Dormand_prince) ?(control = default_control) sys ~t0 ~t1 y0 ~record ~init =
  validate_control control;
  if t1 < t0 then invalid_arg "Ode.Adaptive: t1 must be >= t0";
  let tbl = tableau_of scheme in
  let expo = -1. /. float_of_int (tbl.order_low + 1) in
  let initial_dt =
    let span = t1 -. t0 in
    if span = 0. then control.dt_min
    else Float.min control.dt_max (span /. 100.)
  in
  let rec loop acc t y dt accepted rejected =
    if t >= t1 -. (1e-12 *. Float.max 1. (Float.abs t1)) then
      (acc, y, { accepted; rejected; last_dt = dt })
    else if accepted + rejected >= control.max_steps then raise (Too_many_steps t)
    else begin
      let h = Float.min dt (t1 -. t) in
      let k = stages tbl sys ~t ~dt:h y in
      let y_high = combine tbl k ~dt:h y tbl.b_high in
      let y_low = combine tbl k ~dt:h y tbl.b_low in
      let err = error_norm ~rtol:control.rtol ~atol:control.atol y y_high y_low in
      let m_accepted = Obs.Metrics.counter "ode.adaptive.steps_accepted" in
      let m_rejected = Obs.Metrics.counter "ode.adaptive.steps_rejected" in
      let m_dt =
        Obs.Metrics.histogram ~bounds:dt_bounds "ode.adaptive.step_size"
      in
      if err <= 1. then begin
        let t' = t +. h in
        let grow = if err = 0. then 5. else Float.min 5. (control.safety *. (err ** expo)) in
        let dt' = Float.min control.dt_max (h *. Float.max 0.2 grow) in
        Obs.Metrics.incr m_accepted;
        Obs.Metrics.observe m_dt h;
        loop (record acc t' y_high) t' y_high dt' (accepted + 1) rejected
      end else begin
        let shrink = Float.max 0.1 (control.safety *. (err ** expo)) in
        let dt' = h *. shrink in
        if dt' < control.dt_min then raise (Step_underflow t);
        Obs.Metrics.incr m_rejected;
        loop acc t y dt' accepted (rejected + 1)
      end
    end
  in
  loop init t0 (Linalg.copy y0) initial_dt 0 0

let integrate ?scheme ?control sys ~t0 ~t1 y0 =
  let (), y, stats =
    drive ?scheme ?control sys ~t0 ~t1 y0 ~init:() ~record:(fun () _ _ -> ())
  in
  (y, stats)

let trajectory ?scheme ?control sys ~t0 ~t1 y0 =
  let record acc t y = (t, Linalg.copy y) :: acc in
  let acc, _, stats =
    drive ?scheme ?control sys ~t0 ~t1 y0 ~init:[ (t0, Linalg.copy y0) ] ~record
  in
  (List.rev acc, stats)
