(** First-order ODE systems [y' = f(t, y)].

    Higher-order equations are expected to be rewritten into first-order
    form by the caller (the [plant] library does this for every model). *)

type t
(** An ODE system with a fixed dimension. *)

type inplace = float array -> float array -> float array -> unit
(** [f tcell y dy] writes dy/dt into [dy]; the evaluation time is
    [tcell.(0)]. Passing time through a 1-element float cell (instead of
    a [float] argument) keeps it unboxed across the call, which is what
    makes allocation-free stepping possible. *)

val create :
  ?rhs_into:inplace -> dim:int -> (float -> float array -> float array) -> t
(** [create ~dim rhs] wraps [rhs t y] returning dy/dt. Raises
    [Invalid_argument] if [dim <= 0]. When [rhs_into] is given, fixed-step
    solvers use it to evaluate without allocating; the two callbacks must
    agree. *)

val create_inplace : dim:int -> inplace -> t
(** A system defined only by its in-place right-hand side; the allocating
    view needed by guard location and dense output is derived from it. *)

val rhs_into_opt : t -> inplace option
(** The in-place right-hand side, when the system has one. *)

val note_evals : t -> int -> unit
(** Count [n] right-hand-side evaluations performed directly through
    {!rhs_into_opt} (callers of {!eval} are counted automatically). *)

val dim : t -> int
(** State-space dimension. *)

val eval : t -> float -> float array -> float array
(** [eval sys t y] evaluates the right-hand side, checking that both the
    argument and the result have dimension [dim sys]. *)

val eval_count : t -> int
(** Number of right-hand-side evaluations since creation — used by the
    benches to report work done by each method. *)

val linear : float array array -> t
(** [linear a] is the autonomous linear system [y' = A y]. *)

val affine : float array array -> float array -> t
(** [affine a b] is [y' = A y + b]. *)

val map_state : t -> (float array -> float array) -> (float array -> float array) -> t
(** [map_state sys enc dec] conjugates the system by a change of
    coordinates: states presented to the result are [enc]-oded before
    evaluation and derivatives are [dec]-oded after. Dimensions must be
    preserved. *)
