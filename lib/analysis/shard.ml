open Dsl

(* Shard-safety analysis over the flattened model.

   A happens-before graph relates the concurrent entities — leaf
   streamer threads and capsule instances — through the three ways the
   paper lets them interact: dataflow flows (leaf to leaf through
   junctions and relays), guard emissions over SPort links into capsule
   statecharts, and capsule send actions triggering streamer `when`
   strategies. Cycles in this relation are feedback loops whose phases
   interleave nondeterministically unless the whole cycle shares one
   shard, so every strongly connected component becomes a forced group;
   the partitioner then first-fit-decreasing packs forced groups and
   singletons into shards using EDF feasibility as the fit test. *)

type node = Streamer of string | Capsule of string

type edge_kind =
  | Flow      (* dataflow: producer leaf -> consumer leaf *)
  | Emission  (* guard signal: leaf -> capsule statechart *)
  | Strategy  (* capsule send action -> leaf `when` clause *)

type edge = { e_src : node; e_dst : node; e_kind : edge_kind }

type race = {
  race_role : string;       (* leaf role whose param is written *)
  race_param : string;
  race_senders : string list;  (* >= 2 distinct capsule instances *)
  race_pos : Ast.pos;
}

type interleaving = {
  il_capsule : string;
  il_sources : string list;    (* >= 2 distinct emitting leaf roles *)
  il_pos : Ast.pos;
}

type shard = {
  shard_id : int;
  members : node list;
  tasks : Taskset.task list;
  rta : Rta.t;
  feasible : bool;  (* EDF-feasible in isolation (a forced group that is
                       not feasible alone cannot be split further) *)
}

type t = {
  nodes : node list;
  edges : edge list;
  forced_groups : node list list;
  races : race list;
  interleavings : interleaving list;
  shards : shard list;
  cross_edges : edge list;
}

let node_name = function Streamer s -> s | Capsule c -> c
let node_kind = function Streamer _ -> "streamer" | Capsule _ -> "capsule"
let edge_kind_name = function
  | Flow -> "flow"
  | Emission -> "emission"
  | Strategy -> "strategy"

(* ---- happens-before construction ---- *)

let dedupe l =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l)

let build_edges (m : Model.t) =
  let flow_edges =
    List.filter_map
      (fun ((sn, _), (dn, _)) ->
         if not (List.mem_assoc dn m.Model.periods) then None
         else
           match Model.producer m sn with
           | Some (leaf, _) when not (String.equal leaf dn) ->
             Some { e_src = Streamer leaf; e_dst = Streamer dn; e_kind = Flow }
           | Some _ | None -> None)
      (Dataflow.Graph.flow_list m.Model.graph)
  in
  let capsule ci_name =
    List.find_opt
      (fun (c : Model.capsule_inst) -> String.equal c.Model.ci_name ci_name)
      m.Model.capsules
  in
  let emission_edges =
    List.concat_map
      (fun (em : Model.emission) ->
         List.filter_map
           (fun (lk : Model.link) ->
              if
                String.equal lk.Model.lk_inst em.Model.em_inst
                && String.equal lk.Model.lk_sport em.Model.em_sport
              then
                match capsule lk.Model.lk_capsule with
                | Some ci when List.mem em.Model.em_signal ci.Model.ci_triggers
                  ->
                  Some
                    { e_src = Streamer em.Model.em_role;
                      e_dst = Capsule lk.Model.lk_capsule;
                      e_kind = Emission }
                | Some _ | None -> None
              else None)
           m.Model.links)
      m.Model.emissions
  in
  let strategy_edges =
    List.concat_map
      (fun (ci : Model.capsule_inst) ->
         List.concat_map
           (fun (signal, port) ->
              List.concat_map
                (fun (lk : Model.link) ->
                   if
                     String.equal lk.Model.lk_capsule ci.Model.ci_name
                     && String.equal lk.Model.lk_port port
                   then
                     List.filter_map
                       (fun (st : Model.strategy) ->
                          if
                            String.equal st.Model.str_inst lk.Model.lk_inst
                            && String.equal st.Model.str_signal signal
                          then
                            Some
                              { e_src = Capsule ci.Model.ci_name;
                                e_dst = Streamer st.Model.str_role;
                                e_kind = Strategy }
                          else None)
                       m.Model.strategies
                   else [])
                m.Model.links)
           ci.Model.ci_sends)
      m.Model.capsules
  in
  dedupe (flow_edges @ emission_edges @ strategy_edges)

(* ---- nondeterminism findings ---- *)

let find_interleavings (m : Model.t) edges =
  List.filter_map
    (fun (ci : Model.capsule_inst) ->
       let sources =
         dedupe
           (List.filter_map
              (fun e ->
                 match e with
                 | { e_src = Streamer s; e_dst = Capsule c; e_kind = Emission }
                   when String.equal c ci.Model.ci_name ->
                   Some s
                 | _ -> None)
              edges)
       in
       if List.length sources >= 2 then
         Some
           { il_capsule = ci.Model.ci_name; il_sources = sources;
             il_pos = ci.Model.ci_pos }
       else None)
    m.Model.capsules

let find_races (m : Model.t) =
  (* Capsule instances whose send actions reach this strategy's signal on
     the strategy's streamer instance. *)
  let senders (st : Model.strategy) =
    List.filter_map
      (fun (ci : Model.capsule_inst) ->
         let reaches =
           List.exists
             (fun (signal, port) ->
                String.equal signal st.Model.str_signal
                && List.exists
                     (fun (lk : Model.link) ->
                        String.equal lk.Model.lk_capsule ci.Model.ci_name
                        && String.equal lk.Model.lk_port port
                        && String.equal lk.Model.lk_inst st.Model.str_inst)
                     m.Model.links)
             ci.Model.ci_sends
         in
         if reaches then Some ci.Model.ci_name else None)
      m.Model.capsules
  in
  let cells =
    dedupe
      (List.map
         (fun (st : Model.strategy) -> (st.Model.str_role, st.Model.str_param))
         m.Model.strategies)
  in
  List.filter_map
    (fun (role, param) ->
       let writers =
         List.filter
           (fun (st : Model.strategy) ->
              String.equal st.Model.str_role role
              && String.equal st.Model.str_param param)
           m.Model.strategies
       in
       let all_senders = dedupe (List.concat_map senders writers) in
       if List.length all_senders >= 2 then
         Some
           { race_role = role; race_param = param;
             race_senders = all_senders;
             race_pos = (List.hd writers).Model.str_pos }
       else None)
    cells

(* ---- strongly connected components (Tarjan) ---- *)

let sccs nodes edges =
  let n = Array.length nodes in
  let index_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i nd -> Hashtbl.replace index_of nd i) nodes;
  let adj = Array.make n [] in
  List.iter
    (fun e ->
       match (Hashtbl.find_opt index_of e.e_src, Hashtbl.find_opt index_of e.e_dst)
       with
       | Some s, Some d when s <> d -> adj.(s) <- d :: adj.(s)
       | _, _ -> ())
    edges;
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
         if index.(w) < 0 then begin
           strongconnect w;
           lowlink.(v) <- min lowlink.(v) lowlink.(w)
         end
         else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := pop [] :: !out
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  List.rev_map (List.map (fun i -> nodes.(i))) !out

(* ---- partitioning ---- *)

let util (tasks : Taskset.task list) =
  Rt.Task.total_utilization
    (List.map (fun (x : Taskset.task) -> x.Taskset.task) tasks)

let feasible (tasks : Taskset.task list) =
  Rt.Edf.schedulable (List.map (fun (x : Taskset.task) -> x.Taskset.task) tasks)

let analyze (m : Model.t) (ts : Taskset.t) =
  let nodes =
    List.map (fun (role, _) -> Streamer role) m.Model.periods
    @ List.map
        (fun (ci : Model.capsule_inst) -> Capsule ci.Model.ci_name)
        m.Model.capsules
  in
  let edges = build_edges m in
  let groups = sccs (Array.of_list nodes) edges in
  let forced_groups = List.filter (fun g -> List.length g >= 2) groups in
  let tasks_of_node nd =
    match Taskset.find ts (node_name nd) with
    | Some x -> [ x ]
    | None -> []
  in
  (* Units to place: forced groups first, then unconstrained singletons.
     First-fit-decreasing by utilization; a shard accepts a unit when the
     combined task set stays EDF-feasible. *)
  let in_forced nd = List.exists (fun g -> List.mem nd g) forced_groups in
  let units =
    List.map (fun g -> (g, List.concat_map tasks_of_node g)) forced_groups
    @ List.filter_map
        (fun nd -> if in_forced nd then None else Some ([ nd ], tasks_of_node nd))
        nodes
  in
  let units =
    List.stable_sort
      (fun (_, a) (_, b) -> compare (util b) (util a))
      units
  in
  let shards = ref [] in  (* (members, tasks, feasible) in reverse id order *)
  List.iter
    (fun (members, tasks) ->
       if tasks = [] && !shards <> [] then begin
         (* Taskless unit (event-driven capsule without timers): keep it
            with the shard it talks to most, to minimize cross-shard
            signal hops. *)
         let affinity (ms, _, _) =
           List.length
             (List.filter
                (fun e ->
                   (List.mem e.e_src members && List.mem e.e_dst ms)
                   || (List.mem e.e_dst members && List.mem e.e_src ms))
                edges)
         in
         let best =
           List.fold_left
             (fun acc s -> match acc with
                | Some b when affinity b >= affinity s -> acc
                | _ -> Some s)
             None !shards
         in
         match best with
         | Some (ms, tks, ok) ->
           shards :=
             List.map
               (fun ((ms', _, _) as s) ->
                  if ms' == ms then (ms @ members, tks, ok) else s)
               !shards
         | None -> shards := (members, tasks, true) :: !shards
       end
       else begin
         let rec place = function
           | [] ->
             (* No existing shard fits: open a new one. A unit that is
                infeasible even alone is a genuinely unschedulable forced
                group — no partition can save it. *)
             shards := (members, tasks, feasible tasks) :: !shards
           | (ms, tks, ok) :: rest ->
             if ok && feasible (tasks @ tks) then
               shards :=
                 List.map
                   (fun ((ms', _, _) as s) ->
                      if ms' == ms then (ms @ members, tasks @ tks, ok) else s)
                   !shards
             else place rest
         in
         place (List.rev !shards)
       end)
    units;
  let shards =
    List.mapi
      (fun i (members, tasks, ok) ->
         { shard_id = i; members; tasks; rta = Rta.analyze tasks;
           feasible = ok })
      (List.rev !shards)
  in
  let shard_of nd =
    List.find_map
      (fun s -> if List.mem nd s.members then Some s.shard_id else None)
      shards
  in
  let cross_edges =
    List.filter
      (fun e ->
         match (shard_of e.e_src, shard_of e.e_dst) with
         | Some a, Some b -> a <> b
         | _, _ -> false)
      edges
  in
  { nodes; edges; forced_groups; races = find_races m;
    interleavings = find_interleavings m edges; shards; cross_edges }

let all_feasible t = List.for_all (fun s -> s.feasible) t.shards
