(** Shard-safety analysis over the flattened model.

    A happens-before graph relates the concurrent entities — leaf
    streamer threads and capsule instances — through the three ways the
    paper lets them interact: dataflow flows, guard emissions over SPort
    links, and capsule send actions triggering [when] strategies. Every
    strongly connected component of the relation is a feedback loop
    whose phases interleave nondeterministically unless the whole cycle
    shares one shard, so SCCs become {e forced groups}; the partitioner
    then first-fit-decreasing packs forced groups and singletons into
    shards, using EDF feasibility of the combined task set as the fit
    test. A forced group infeasible alone is genuinely unschedulable —
    no partition can split it. *)

open Dsl

type node = Streamer of string | Capsule of string

type edge_kind =
  | Flow      (** dataflow: producer leaf -> consumer leaf *)
  | Emission  (** guard signal: leaf -> capsule statechart *)
  | Strategy  (** capsule send action -> leaf [when] clause *)

type edge = { e_src : node; e_dst : node; e_kind : edge_kind }

type race = {
  race_role : string;          (** leaf role whose param is written *)
  race_param : string;
  race_senders : string list;  (** >= 2 distinct capsule instances *)
  race_pos : Ast.pos;
}

type interleaving = {
  il_capsule : string;
  il_sources : string list;    (** >= 2 distinct emitting leaf roles *)
  il_pos : Ast.pos;
}

type shard = {
  shard_id : int;
  members : node list;
  tasks : Taskset.task list;
  rta : Rta.t;
  feasible : bool;
}

type t = {
  nodes : node list;
  edges : edge list;
  forced_groups : node list list;  (** SCCs with at least two members *)
  races : race list;
  interleavings : interleaving list;
  shards : shard list;
  cross_edges : edge list;         (** edges spanning two shards *)
}

val node_name : node -> string
val node_kind : node -> string
val edge_kind_name : edge_kind -> string

val analyze : Model.t -> Taskset.t -> t

val all_feasible : t -> bool
