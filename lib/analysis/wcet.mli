(** Measured worst-case execution times, round-tripped through JSON.

    [umh simulate --profile --wcet-out FILE] writes one entry per
    profiled entity with its worst single-frame self time (the
    profiler's [r_max_ns]); [umh analyze --wcet FILE] reads the table
    back so the response-time analysis rests on measurement instead of
    the default utilization model.

    Schema ([umh-wcet], version 1):
    [{ "schema": "umh-wcet", "version": 1, "model": "...",
       "entries": [ { "entity": ..., "kind": ..., "wcet_s": ...,
                      "frames": ... }, ... ] }] *)

type entry = {
  entity : string;  (** profiler entity name; capsules are ["system/<inst>"] *)
  kind : string;    (** ["streamer"] / ["capsule"] / ["solver"] / ["other"] *)
  wcet_s : float;   (** worst single-frame self time, seconds *)
  frames : int;     (** completed frames behind the measurement *)
}

type t = {
  model : string option;
  entries : entry list;
}

val schema_name : string
val schema_version : int

val empty : t

val of_profile : ?model:string -> unit -> t
(** Snapshot {!Obs.Profile.rows}: every entity with at least one
    completed frame and a positive worst frame. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
val of_string : string -> (t, string) result
val of_file : string -> (t, string) result

val find : t -> string -> float option
(** Look an entity up by exact name first, then by the basename of the
    slash-separated entity path (capsules register as
    ["system/<inst>"]). Entries with non-positive or non-finite wcets
    were dropped at parse time. *)
