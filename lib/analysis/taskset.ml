open Dsl

(* Periodic task extraction (paper §5: one thread per streamer, capsules
   on event-driven threads poked by their timers).

   Streamer tasks come from declared tick rates; timer-driven capsules
   become one task per instance at their densest timer period. Each
   task's wcet resolves measured > declared > default: a measurement
   from a `--wcet` table wins, then the streamer's `wcet` budget from
   the model text, then the utilization model [Hybrid.Threading] has
   always used. *)

type kind = Streamer | Capsule

type wcet_source = Measured | Declared | Default

type task = {
  task : Rt.Task.t;
  kind : kind;
  source : wcet_source;
  pos : Ast.pos;
}

type issue =
  | Budget_exceeds_period of {
      name : string;
      wcet : float;
      period : float;
      pos : Ast.pos;
    }

type t = {
  tasks : task list;
  issues : issue list;
}

let kind_name = function Streamer -> "streamer" | Capsule -> "capsule"

let source_name = function
  | Measured -> "measured"
  | Declared -> "declared"
  | Default -> "default"

let default_utilization = 0.1

let extract ?(wcet = Wcet.empty) ?(default_utilization = default_utilization)
    (m : Model.t) =
  let issues = ref [] in
  let make ~kind ~pos ~declared name period =
    let budget, source =
      match Wcet.find wcet name with
      | Some w -> (w, Measured)
      | None ->
        (match declared with
         | Some w -> (w, Declared)
         | None ->
           ( Hybrid.Threading.default_wcet ~utilization:default_utilization
               period,
             Default ))
    in
    (* An execution budget at or above the period can never meet the
       implicit deadline; clamp so the task still participates (at
       utilization 1) and record the finding for UMH046. *)
    let budget =
      if budget >= period then begin
        issues :=
          Budget_exceeds_period { name; wcet = budget; period; pos } :: !issues;
        period
      end
      else budget
    in
    { task = Rt.Task.create ~period ~wcet:budget name; kind; source; pos }
  in
  let streamer_tasks =
    List.map
      (fun (role, period) ->
         let pos =
           Option.value
             ~default:{ Ast.line = 0; col = 0 }
             (List.assoc_opt role m.Model.leaf_pos)
         in
         make ~kind:Streamer ~pos
           ~declared:(List.assoc_opt role m.Model.wcets)
           role period)
      m.Model.periods
  in
  let capsule_tasks =
    List.filter_map
      (fun (ci : Model.capsule_inst) ->
         match ci.Model.ci_timers with
         | [] -> None
         | timers ->
           let period =
             List.fold_left
               (fun acc (_, p) -> if p > 0. then Float.min acc p else acc)
               Float.infinity timers
           in
           if Float.is_finite period then
             Some
               (make ~kind:Capsule ~pos:ci.Model.ci_pos ~declared:None
                  ci.Model.ci_name period)
           else None)
      m.Model.capsules
  in
  { tasks = streamer_tasks @ capsule_tasks; issues = List.rev !issues }

let rt_tasks t = List.map (fun x -> x.task) t.tasks

let uses_default t = List.exists (fun x -> x.source = Default) t.tasks

let find t name =
  List.find_opt (fun x -> String.equal x.task.Rt.Task.name name) t.tasks
