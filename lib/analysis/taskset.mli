(** Periodic task extraction from the flattened model.

    Streamer tasks come from declared tick rates (paper §5: one thread
    per streamer); capsules with [timer] declarations become one task
    per instance at their densest timer period. Each wcet resolves
    measured > declared > default — a measurement from a [--wcet] table
    first, then the streamer's [wcet] budget from the model text, then
    the utilization model {!Hybrid.Threading} has always used. *)

open Dsl

type kind = Streamer | Capsule

type wcet_source = Measured | Declared | Default

type task = {
  task : Rt.Task.t;
  kind : kind;
  source : wcet_source;
  pos : Ast.pos;  (** instance declaration, for diagnostic spans *)
}

type issue =
  | Budget_exceeds_period of {
      name : string;
      wcet : float;
      period : float;
      pos : Ast.pos;
    }
      (** The resolved budget can never meet the implicit deadline. The
          task is kept with its wcet clamped to the period (utilization
          1) so downstream analyses still see the overload. *)

type t = {
  tasks : task list;
  issues : issue list;
}

val kind_name : kind -> string
val source_name : wcet_source -> string

val default_utilization : float
(** 0.1 — the per-task utilization assumed when nothing is measured or
    declared (matches {!Hybrid.Threading.tasks_for}). *)

val extract : ?wcet:Wcet.t -> ?default_utilization:float -> Model.t -> t

val rt_tasks : t -> Rt.Task.t list
val uses_default : t -> bool
(** At least one task fell back to the default utilization model. *)

val find : t -> string -> task option
