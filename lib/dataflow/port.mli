(** Data ports (DPorts): typed, register-semantics endpoints of flows.

    A DPort holds the most recently written value (continuous signals are
    sampled, not queued — unlike SPort signal messages, which use
    {!Des.Mailbox}). *)

type direction = In | Out

val direction_name : direction -> string

type t

val create : name:string -> direction -> Flow_type.t -> t
val name : t -> string
val direction : t -> direction
val flow_type : t -> Flow_type.t

val is_scalar_float : t -> bool
(** The port's flow type is exactly [{value: float}] — such ports carry
    their latest sample in an unboxed float cell alongside the boxed
    representation, which is materialized lazily on {!read}. *)

val fcell : t -> float array
(** The 1-element float cell of a scalar-float port. Hot paths write the
    sample into [fcell.(0)] and then call {!note_float_write}; reading it
    is only meaningful when the latest write was a float write (compiled
    routing plans guarantee this by construction). *)

val note_float_write : t -> unit
(** Commit a direct [fcell] store as a write: bumps the write counter and
    marks the boxed representation stale. *)

val write_float : t -> float -> unit
(** [write t (Value.Float f)] without allocating on scalar-float ports
    (falls back to {!write} on any other flow type). *)

val has_value : t -> bool
(** The port has been written at least once. *)

val write : t -> Value.t -> unit
(** Store a value. Raises [Invalid_argument] when the value does not
    conform to the port's flow type; the stored value is normalized to
    exactly the type's fields. *)

val read : t -> Value.t option
(** Last written (normalized) value, [None] before the first write. *)

val read_float : t -> float option
(** Convenience for scalar flows: the single numeric field. *)

val read_float_default : t -> float -> float
(** [read_float] with a default for the never-written case. *)

val writes : t -> int
(** Number of successful writes. *)
