(** Dataflow networks: nodes with DPorts, connected by flows and relays.

    This is the structural half of the paper's continuous subsystem — the
    hybrid engine moves values along the flows; this module owns the
    wiring and its static rules (type compatibility, single writer per
    input, acyclicity up to relays). *)

type t
type node

type error =
  | Unknown_port of string * string          (** node, port *)
  | Type_mismatch of { src : string; dst : string;
                       src_type : Flow_type.t; dst_type : Flow_type.t }
  | Input_already_driven of string * string  (** node, port *)
  | Not_an_output of string * string
  | Not_an_input of string * string

val error_to_string : error -> string

val create : unit -> t

val add_node :
  t -> name:string
  -> inputs:(string * Flow_type.t) list
  -> outputs:(string * Flow_type.t) list
  -> node
(** Raises [Invalid_argument] on a duplicate node name. *)

val add_relay : t -> name:string -> Flow_type.t -> fanout:int -> node
(** The paper's relay stereotype: one input ["in"], [fanout] outputs
    ["out1"] … ["outN"] of the same flow type, copying on propagation.
    [fanout >= 2] (the paper: "generates two similar flows from a flow"). *)

val add_junction : t -> name:string -> Flow_type.t -> node
(** A 1-in/1-out pass-through node with relay (copy-on-propagate)
    semantics. Not a paper stereotype — an implementation device used to
    flatten composite streamer borders. Ports are ["in"] and ["out1"]. *)

val is_relay : node -> bool
val node_name : node -> string
val nodes : t -> node list
val find_node : t -> string -> node option

val input_port : node -> string -> Port.t option
val output_port : node -> string -> Port.t option
val input_ports : node -> Port.t list
val output_ports : node -> Port.t list

val connect : t -> src:node * string -> dst:node * string -> (unit, error) result
(** Add a flow. Enforces the paper's subset rule via
    {!Flow_type.compatible} and at most one driver per input port. *)

val connect_exn : t -> src:node * string -> dst:node * string -> unit

val flow_count : t -> int

val unconnected_inputs : t -> (string * string) list
(** (node, port) pairs with no incoming flow — a completeness warning. *)

val unconnected_outputs : t -> (string * string) list
(** The dual: (node, port) output pairs feeding no flow — their values
    are computed every tick and never consumed. *)

val flow_list : t -> ((string * string) * (string * string)) list
(** Every flow as ((src node, src port), (dst node, dst port)), in
    insertion order — the structural view used by static analyses. *)

val topo_order : t -> (node list, string list) result
(** Kahn's algorithm over node dependencies; [Error names] lists the
    nodes involved in a cycle. *)

val propagate_from : t -> node -> int
(** Copy this node's written output values along outgoing flows into the
    connected input ports, flowing through relays transitively. Returns
    the number of port writes performed.

    Runs on a compiled routing plan: the node's full downstream write
    sequence (relay fan-out pre-expanded, ports pre-resolved) is built on
    first use and cached; {!connect} invalidates every cached plan.
    All-scalar-float subtrees execute as raw float-cell copies with no
    allocation. Raises [Failure] on a relay cycle reachable from
    [node]. *)

val propagate_from_reference : t -> node -> int
(** The original list-walk propagation (scan all flows, compare node
    names, rescan through relays). Semantically identical to
    {!propagate_from}; kept as the oracle for differential tests. *)

val propagate_all : t -> int
(** Propagate from every node in topological order. Raises [Failure] on a
    cyclic graph. *)
