type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Vec of float array
  | Record of (string * t) list

let unit_ = Unit
let bool b = Bool b
let int i = Int i
let float f = Float f
let vec v = Vec (Array.copy v)

let record fields =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) fields in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then
        invalid_arg (Printf.sprintf "Dataflow.Value.record: duplicate field %S" a);
      check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  Record sorted

let base_of = function
  | Bool _ -> Some Flow_type.TBool
  | Int _ -> Some Flow_type.TInt
  | Float _ -> Some Flow_type.TFloat
  | Vec v -> Some (Flow_type.TVec (Array.length v))
  | Unit | Record _ -> None

let field v name =
  match v with
  | Record fields -> List.assoc_opt name fields
  | Bool _ | Int _ | Float _ | Vec _ ->
    if String.equal name "value" then Some v else None
  | Unit -> None

let conforms v ty =
  List.for_all
    (fun (name, base) ->
       match field v name with
       | Some fv ->
         (match base_of fv with
          | Some b -> Flow_type.base_equal b base
          | None -> false)
       | None -> false)
    (Flow_type.fields ty)

let normalize v ty =
  if not (conforms v ty) then None
  else
    let project (name, _) =
      match field v name with
      | Some fv -> (name, fv)
      | None -> assert false (* conforms just checked every field *)
    in
    Some (Record (List.map project (Flow_type.fields ty)))

let to_float v =
  match v with
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Bool b -> Some (if b then 1. else 0.)
  | Record [ (_, inner) ] ->
    (match inner with
     | Float f -> Some f
     | Int i -> Some (float_of_int i)
     | Bool b -> Some (if b then 1. else 0.)
     | Unit | Vec _ | Record _ -> None)
  | Unit | Vec _ | Record _ -> None

let get_float v =
  match to_float v with
  | Some f -> f
  | None -> invalid_arg "Dataflow.Value.get_float: not a numeric value"

let rec map_float f = function
  | Float x -> Float (f x)
  | Vec v -> Vec (Array.map f v)
  | Record fields -> Record (List.map (fun (n, v) -> (n, map_float f v)) fields)
  | (Unit | Bool _ | Int _) as v -> v

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Vec x, Vec y -> Array.length x = Array.length y && Array.for_all2 Float.equal x y
  | Record x, Record y ->
    List.length x = List.length y
    && List.for_all2
         (fun (na, va) (nb, vb) -> String.equal na nb && equal va vb)
         x y
  | (Unit | Bool _ | Int _ | Float _ | Vec _ | Record _), _ -> false

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Vec v ->
    Format.fprintf ppf "[|%a|]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf x -> Format.fprintf ppf "%g" x))
      (Array.to_list v)
  | Record fields ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf (name, v) -> Format.fprintf ppf "%s = %a" name pp v))
      fields

let to_string v = Format.asprintf "%a" pp v
