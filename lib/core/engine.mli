(** The hybrid co-simulation engine — where the paper's architecture runs.

    One {!Des.Engine} carries both worlds:
    - the {e event thread}: a UML-RT capsule tree executing
      run-to-completion on signal messages;
    - one {e streamer thread} per leaf streamer, ticking at its declared
      rate; each tick integrates the solver from its last sync point
      (batched, with zero-crossing detection), writes output DPorts and
      propagates flows.

    Capsules and streamers communicate exclusively through SPort links:
    a streamer SPort is bound to a {e border port} of the root capsule,
    and messages travel over an {!Rt.Channel} with a configurable latency
    model — the "communication mechanism of threads" of the paper.
    Signals arriving at a streamer first synchronize its solver to the
    current time, then run its strategy; signals emitted by guards
    (zero-crossings) are timestamped at the located crossing. *)

exception Invalid_streamer of string list
exception Invalid_link of string

exception Diverged of string
(** Raised (with the streamer role) when a supervised solver's state goes
    non-finite under the [Escalate] policy. *)

type t

val create :
  ?signal_latency:Rt.Channel.latency_model
  -> ?signal_drop_probability:float
  -> ?capsule_latency:float
  -> ?root:Umlrt.Capsule.t
  -> unit -> t
(** [signal_latency] applies to capsule->streamer signal channels
    (default [Immediate]); [signal_drop_probability] (default 0) makes
    those channels lossy; [capsule_latency] applies to capsule-to-capsule
    mailboxes. Without a [root] capsule the engine runs the continuous
    side only. *)

val des : t -> Des.Engine.t
val clock : t -> Time_service.t
val runtime : t -> Umlrt.Runtime.t option

val add_streamer : t -> role:string -> Streamer.t -> unit
(** Validates (raising {!Invalid_streamer}) and instantiates; composite
    streamers are flattened, children become roles ["role.child"]. *)

val add_relay : t -> name:string -> Dataflow.Flow_type.t -> fanout:int -> unit
(** A free-standing relay node usable as a flow endpoint (ports ["in"],
    ["out1"] … ["outN"]). *)

val add_junction : t -> name:string -> Dataflow.Flow_type.t -> unit
(** A 1-in/1-out pass-through flow node (ports ["in"]/["out1"]) — how a
    capsule's relay-only DPort participates in the dataflow graph. *)

val connect_flow :
  t -> src:string * string -> dst:string * string -> (unit, string) result
(** Connect DPorts: endpoints are (role-or-relay, port). Enforces the
    paper's subset rule and single-driver inputs. *)

val connect_flow_exn : t -> src:string * string -> dst:string * string -> unit

val link_sport :
  t -> role:string -> sport:string -> border_port:string -> (unit, string) result
(** Bind a streamer SPort to a root-capsule border port (both
    directions). Checked per rule R4. *)

val link_sport_exn : t -> role:string -> sport:string -> border_port:string -> unit

val link_sport_remote :
  t -> role:string -> sport:string -> border_port:string
  -> send:(Statechart.Event.t -> unit) -> unit
(** Sharded runtime only: the streamer behind [border_port] lives on
    another domain; capsule messages routed to that border leave through
    [send] (an SPSC-ring push installed by the shard coordinator)
    instead of a local channel. *)

val deliver_remote :
  t -> role:string -> sport:string -> sent:float -> Statechart.Event.t -> unit
(** Sharded runtime only, receiving side: inject a cross-shard signal
    that was sent at the (earlier) instant [sent] on the capsule shard.
    It flows through the streamer's own channel ({!Rt.Channel.send_stamped}),
    so latency sampling, stats and delivery order are bit-identical to a
    local send at that instant. *)

val start : t -> unit
(** Write initial outputs, arm streamer tick timers, install the border
    interceptor. Idempotent. *)

val start_outputs : t -> unit
(** Phase one of {!start} alone (border interceptor, initial outputs,
    guard priming, tick timers — no capsule behaviours, no telemetry
    record). The shard coordinator runs this on every shard before
    emitting the merged seq-0 telemetry record itself. Idempotent. *)

val start_rest : t -> unit
(** Phase two of {!start} alone (capsule behaviours). Idempotent. *)

val run_until : t -> float -> unit
(** {!start} if needed, then run the DES until the given time. *)

val tick_now : t -> role:string -> unit
(** Run one tick of the named streamer immediately: sync its solver to
    the current DES time, then write and propagate its outputs. This is
    exactly what the periodic tick timer does; exposed so harnesses
    (e.g. allocation tests and benchmarks) can drive a tick without
    scheduling. Raises [Invalid_argument] for unknown roles. *)

val inject : t -> port:string -> Statechart.Event.t -> unit
(** Environment message into a root border port (requires a root). *)

val drain_outbox : t -> (string * Statechart.Event.t) list
(** Messages that crossed the root border on ports {e not} linked to any
    streamer — genuinely environment-bound output. *)

val streamer_roles : t -> string list
(** Flattened leaf roles, in creation order. *)

val solver_of : t -> string -> Solver.t option
val ticks_of : t -> string -> int

val trace_dport : t -> role:string -> dport:string -> Sigtrace.Trace.t
(** Register (or fetch) a trace recording this DPort at every tick of its
    owning streamer (plus the initial sample once started). *)

val trace_sampled :
  t -> role:string -> dport:string -> period:float -> Sigtrace.Trace.t
(** Record ANY registered DPort (including composite borders and relay
    junctions) by polling it every [period] on the simulated clock —
    use when {!trace_dport} does not apply because the port is not a
    leaf streamer output. Raises [Invalid_argument] for unknown ports
    or a non-positive period. *)

val read_dport : t -> role:string -> dport:string -> float option
(** Current value on any registered DPort (streamer or relay). *)

val thread_set : t -> (string * float) list
(** (role, tick period) for every leaf streamer — input to
    {!Threading}. *)

type stats = {
  ticks_total : int;
  signals_to_streamers : int;
  signals_to_capsules : int;
  signals_dropped : int;
}

val stats : t -> stats

(** {2 Fault injection and supervision}

    With no injector and no supervisor the engine takes exactly the
    pre-fault-layer code paths (bit-identical output, no added
    allocation); an injector whose spec has no rules of a given kind
    costs one load and branch per hook site. *)

val set_faults : t -> Fault.Injector.t option -> unit
(** Attach (or detach) a fault injector. Signal rules apply at the
    capsule/streamer border in both directions, flow rules at DPort
    writes, solver rules at solver sync. *)

val faults : t -> Fault.Injector.t option

val set_supervisor : t -> ?degrade_signal:string -> Fault.Supervisor.policy -> unit
(** Install solver supervision: step underflow / step-budget exhaustion
    ({!Ode.Adaptive} exceptions) and non-finite states are caught at step
    boundaries and handled per policy — [Restart] resets the solver to
    its initial state at the current time, [Freeze_last] stops the
    streamer holding its last outputs, [Escalate] re-raises. The first
    fault on a streamer also dispatches [degrade_signal] (default
    {!Strategy.degrade_signal}) through its strategy, so degraded modes
    are ordinary strategy handlers. *)

val apply_fault_spec : t -> Fault.Spec.t -> Fault.Injector.t
(** Attach an injector built from the spec and install any [supervise] /
    [degrade-signal] directives it carries (a degrade signal without an
    explicit policy arms [Restart]). Returns the injector for stats. *)

val solver_faults : t -> int
(** Solver faults caught by the supervisor so far. *)

val supervisor_restarts : t -> int
(** Solver restarts performed by this engine (also aggregated into the
    process-wide ["supervisor.restarts"] counter). *)

val degraded_time : t -> float
(** Total streamer-seconds spent degraded (per streamer, from its first
    fault to now); also published to the ["degraded.time"] gauge. *)

val degraded_roles : t -> string list
(** Streamers that have suffered at least one supervised fault. *)
