type env = {
  param : string -> float;
  input : string -> float;
  clock : Time_service.t;
}

type rhs = env -> float -> float array -> float array
type rhs_into = env -> float array -> float array -> float array -> unit

type guard = {
  guard_name : string;
  direction : Ode.Events.direction;
  expr : env -> float -> float array -> float;
}

(* Parameters live in [float ref] cells so the hot path can read a value
   with one load instead of a hashtable probe. [interned] is a small
   physical-equality cache over the cells: OCaml string literals are
   physically constant, so an rhs that asks for [param "duty"] every
   evaluation hits the same pointer each time and resolves with a short
   [==] scan — no hashing, no allocation. *)
type t = {
  table : (string, float ref) Hashtbl.t;
  env : env;
  integ : Ode.Integrator.t;
  dim : int;
  mutable prepared_guards : guard list;
  mutable prepared_ode : Ode.Events.guard list;
  mutable crossings : int;
  m_crossings : Obs.Metrics.counter;
}

let max_interned = 64

let make_system ~dim ?rhs_into env rhs =
  match rhs_into with
  | None -> Ode.System.create ~dim (fun time y -> rhs env time y)
  | Some f ->
    Ode.System.create ~dim
      ~rhs_into:(fun tcell y dy -> f env tcell y dy)
      (fun time y ->
         let dy = Array.make dim 0. in
         f env [| time |] y dy;
         dy)

let create ?(method_ = Ode.Integrator.Fixed (Ode.Fixed.Rk4, 1e-3)) ?rhs_into
    ~dim ~init ~params ~input ~clock ~t0 rhs =
  if Array.length init <> dim then
    invalid_arg "Hybrid.Solver.create: init state dimension mismatch";
  let table = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace table k (ref v)) params;
  (* The interning cache is owned by the env closure; [set_param] stays
     coherent with it because both share the same ref cells. *)
  let interned_box = ref [||] in
  let lookup name =
    match Hashtbl.find_opt table name with
    | Some r ->
      let arr = !interned_box in
      if Array.length arr < max_interned then
        interned_box := Array.append arr [| (name, r) |];
      r
    | None ->
      failwith (Printf.sprintf "Hybrid.Solver: unknown parameter %S" name)
  in
  let param name =
    let arr = !interned_box in
    let n = Array.length arr in
    let rec scan i =
      if i >= n then !(lookup name)
      else begin
        let (k, r) = arr.(i) in
        if k == name then !r else scan (i + 1)
      end
    in
    scan 0
  in
  let env = { param; input; clock } in
  let integ =
    Ode.Integrator.create ~method_ (make_system ~dim ?rhs_into env rhs) ~t0 init
  in
  { table; env; integ; dim; prepared_guards = []; prepared_ode = [];
    crossings = 0; m_crossings = Obs.Metrics.counter "ode.guard_crossings" }

let env t = t.env
let time t = Ode.Integrator.time t.integ
let state t = Ode.Integrator.state t.integ
let state_view t = Ode.Integrator.state_view t.integ
let set_state t y = Ode.Integrator.set_state t.integ y
let reset t ~t0 y = Ode.Integrator.reset t.integ ~t0 y

(* Allocation-free finiteness scan over the live state — the supervisor's
   divergence probe, run at every step boundary when supervision is on. *)
let state_finite t =
  (* A plain loop, not a local recursive function: the closure the
     compiler builds for the latter costs a handful of minor words per
     probe, which shows up in every supervised tick. *)
  let y = Ode.Integrator.state_view t.integ in
  let n = Array.length y in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (Float.is_finite y.(i)) then ok := false
  done;
  !ok

let get_param t name = t.env.param name

let set_param t name v =
  match Hashtbl.find_opt t.table name with
  | Some r -> r := v    (* cell mutation keeps interned caches coherent *)
  | None -> Hashtbl.replace t.table name (ref v)

let params t =
  List.sort (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.table [])

let set_rhs t rhs =
  Ode.Integrator.replace_system t.integ (make_system ~dim:t.dim t.env rhs)

let to_ode_guard t g =
  Ode.Events.guard ~direction:g.direction g.guard_name
    (fun time y -> g.expr t.env time y)

let note_crossing t crossing =
  t.crossings <- t.crossings + 1;
  Obs.Metrics.incr t.m_crossings;
  if Obs.Tracer.enabled () then
    Obs.Tracer.instant ~cat:"ode" ~name:"crossing"
      ~args:[ ("guard", Obs.Tracer.Str crossing.Ode.Events.guard_name) ]
      ~sim_time:crossing.Ode.Events.time ()

let advance_with_ode_guards t ~until ~ode_guards ~on_crossing =
  let rec loop () =
    match Ode.Integrator.advance_guarded t.integ until ode_guards with
    | Ode.Integrator.Reached _ -> ()
    | Ode.Integrator.Interrupted crossing ->
      note_crossing t crossing;
      on_crossing crossing;
      loop ()
  in
  loop ()

let advance t ~until ~guards ~on_crossing =
  if until > time t then begin
    let ode_guards = List.map (to_ode_guard t) guards in
    advance_with_ode_guards t ~until ~ode_guards ~on_crossing
  end

let set_guards t guards =
  t.prepared_guards <- guards;
  t.prepared_ode <- List.map (to_ode_guard t) guards

let prepared_guards t = t.prepared_guards

let advance_prepared t ~until ~on_crossing =
  if until > time t then begin
    match t.prepared_ode with
    | [] -> Ode.Integrator.advance_to t.integ until
    | ode_guards -> advance_with_ode_guards t ~until ~ode_guards ~on_crossing
  end

let steps_taken t = Ode.Integrator.steps_taken t.integ
let crossings_seen t = t.crossings
