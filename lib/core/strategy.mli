(** The [strategy] stereotype: named reactions mapping SPort signals to
    solver modifications.

    This is the Strategy pattern from the paper's Figure 1 — the
    state/event side never touches the equations directly; it sends a
    signal, and the strategy registered for that signal decides what the
    solver does (set a parameter, reset state, switch equations,
    answer back). *)

(** The interface a strategy gets to manipulate its solver and talk
    back through SPorts. *)
type control = {
  set_param : string -> float -> unit;
  get_param : string -> float;
  get_state : unit -> float array;
  set_state : float array -> unit;
  set_rhs : Solver.rhs -> unit;
  emit : sport:string -> Statechart.Event.t -> unit;
  now : unit -> float;
}

type handler = control -> Statechart.Event.t -> unit

type t

val create : unit -> t

val on : t -> signal:string -> handler -> unit
(** Register a handler; multiple handlers for one signal run in
    registration order. *)

val signals : t -> string list
(** Signals with at least one handler, sorted. *)

val handles : t -> string -> bool

val handle : t -> control -> Statechart.Event.t -> bool
(** Run every handler registered for the event's signal; [false] when
    none is registered (the signal is dropped, mirroring UML-RT). *)

val degrade_signal : string
(** The signal the engine's supervisor dispatches (through the ordinary
    {!handle} path) when a solver fault degrades this streamer — unless
    the fault spec names a different one. *)

val on_degrade : t -> handler -> unit
(** [on_degrade t h] is [on t ~signal:degrade_signal h]: register the
    degraded-mode fallback (e.g. switch an optimal controller to
    bang-bang). Degradation is thereby modeled as strategy switching in
    the formalism itself. *)

(** {2 Canned handlers} *)

val set_param_from_payload : string -> handler
(** Store the event's numeric payload into the named parameter; events
    without a numeric payload are ignored. *)

val set_param_const : string -> float -> handler

val reset_state : float array -> handler

val reply : sport:string -> make:(control -> Statechart.Event.t -> Statechart.Event.t) -> handler
(** Emit a response computed from the incoming event. *)
