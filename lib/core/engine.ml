exception Invalid_streamer of string list
exception Invalid_link of string

exception Diverged of string

(* How a streamer's outputs reach its graph ports, decided once at
   instantiation. [Out_fast] holds pre-resolved (state index, port,
   float cell) triples so a steady-state tick writes outputs with plain
   array stores — no closure call, no Value.t, no port-name lookup. *)
type outplan =
  | Out_fn of Streamer.output_fn
  | Out_fast of (int * Dataflow.Port.t * float array) array

type sinst = {
  role : string;
  flight_id : int;                 (* [role] interned for the flight recorder *)
  prof_id : int;                   (* profiler slot for this streamer *)
  prof_solver : int;               (* profiler slot for its solver kernel *)
  def : Streamer.t;                (* the leaf definition *)
  spec : Streamer.solver_spec;
  solver : Solver.t;
  node : Dataflow.Graph.node;
  outplan : outplan;
  channel : (string * Statechart.Event.t) Rt.Channel.t;
  mutable ticks : int;
  mutable traces : (string * Sigtrace.Trace.t) list;
  garr : Streamer.guard_decl array;  (* spec.guards, indexable *)
  gprev : float array;
    (* last end-of-sync guard values, for tick-boundary edge detection of
       guards that only move between integration intervals (input-driven) *)
  gfired : bool array;               (* per-sync scratch: fired during ODE advance *)
  mutable gprimed : bool;            (* gprev holds real values (set by start) *)
  out_names : string array;
    (* qualified "role.dport" per Out_fast cell, precomputed so flow-fault
       targeting allocates nothing per tick; [||] for Out_fn *)
  mutable frozen : bool;             (* supervision froze this streamer *)
  mutable degraded_since : float;    (* nan while healthy *)
}

type pentry = {
  pnode : Dataflow.Graph.node;
  in_name : string option;   (* graph-level input port backing this DPort *)
  out_name : string option;
}

type link = {
  l_role : string;
  l_sport : string;
  l_border : string;
}

type t = {
  des : Des.Engine.t;
  clock : Time_service.t;
  runtime : Umlrt.Runtime.t option;
  root_class : Umlrt.Capsule.t option;
  graph : Dataflow.Graph.t;
  streamers : (string, sinst) Hashtbl.t;
  mutable roles : string list;  (* reversed creation order, leaves only *)
  dport_map : (string, pentry) Hashtbl.t;  (* "path:port" -> entry *)
  nodes_by_name : (string, Dataflow.Graph.node) Hashtbl.t;
  mutable links : link list;
  signal_latency : Rt.Channel.latency_model;
  signal_drop_probability : float;
  outbox : (string * Statechart.Event.t) Queue.t;
  mutable started : bool;
  mutable outputs_started : bool;
  mutable signals_to_streamers : int;
  mutable signals_to_capsules : int;
  mutable signals_dropped : int;
  mutable seed_counter : int;
  (* Fault layer. [faults = None] is the pristine path: every hook site
     is one load + branch, so a run without a spec stays bit-identical
     and allocation-free. *)
  mutable faults : Fault.Injector.t option;
  held : (string, unit -> unit) Hashtbl.t;  (* reorder: held deliveries *)
  mutable supervisor : Fault.Supervisor.policy option;
  mutable degrade_signal : string option;   (* default: Strategy.degrade_signal *)
  mutable solver_faults : int;
  mutable supervisor_restarts : int;
  (* Cross-shard outbound links: border port -> (remote role, sport,
     send). Installed by the sharded runtime on the capsule-hosting
     shard for streamers that live on another domain; the send closure
     pushes onto an SPSC ring. Empty in single-domain runs. *)
  remote_links :
    (string, string * string * (Statechart.Event.t -> unit)) Hashtbl.t;
  (* Observability handles, resolved against the creating domain's
     ambient registry so an engine built inside a shard worker counts
     into that shard's private registry. *)
  m_ticks : Obs.Metrics.counter;
  m_flow_samples : Obs.Metrics.counter;
  m_to_streamers : Obs.Metrics.counter;
  m_to_capsules : Obs.Metrics.counter;
  m_dropped : Obs.Metrics.counter;
}

type stats = {
  ticks_total : int;
  signals_to_streamers : int;
  signals_to_capsules : int;
  signals_dropped : int;
}

let create ?(signal_latency = Rt.Channel.Immediate)
    ?(signal_drop_probability = 0.) ?(capsule_latency = 0.) ?root () =
  let des = Des.Engine.create () in
  let runtime =
    match root with
    | Some capsule ->
      Some (Umlrt.Runtime.create des ~latency:capsule_latency ~defer_start:true capsule)
    | None -> None
  in
  { des; clock = Time_service.create des; runtime; root_class = root;
    graph = Dataflow.Graph.create (); streamers = Hashtbl.create 16; roles = [];
    dport_map = Hashtbl.create 64; nodes_by_name = Hashtbl.create 32;
    links = []; signal_latency; signal_drop_probability;
    outbox = Queue.create (); started = false; outputs_started = false;
    signals_to_streamers = 0; signals_to_capsules = 0; signals_dropped = 0;
    seed_counter = 0;
    faults = None; held = Hashtbl.create 8; supervisor = None;
    degrade_signal = None; solver_faults = 0; supervisor_restarts = 0;
    remote_links = Hashtbl.create 4;
    m_ticks = Obs.Metrics.counter "hybrid.ticks";
    m_flow_samples = Obs.Metrics.counter "hybrid.flow_samples";
    m_to_streamers = Obs.Metrics.counter "hybrid.signals_to_streamers";
    m_to_capsules = Obs.Metrics.counter "hybrid.signals_to_capsules";
    m_dropped = Obs.Metrics.counter "hybrid.signals_dropped" }

let des t = t.des
let clock t = t.clock
let runtime t = t.runtime

let key path port = path ^ ":" ^ port

let register_port t path (d : Streamer.dport_decl) node =
  let entry =
    match d.Streamer.direction with
    | `In -> { pnode = node; in_name = Some d.Streamer.dname; out_name = None }
    | `Out -> { pnode = node; in_name = None; out_name = Some d.Streamer.dname }
  in
  Hashtbl.replace t.dport_map (key path d.Streamer.dname) entry

let find_link t ~role ~sport =
  List.find_opt
    (fun l -> String.equal l.l_role role && String.equal l.l_sport sport)
    t.links

let find_link_by_border t border =
  List.find_opt (fun l -> String.equal l.l_border border) t.links

let drop_signal (t : t) =
  t.signals_dropped <- t.signals_dropped + 1;
  Obs.Metrics.incr t.m_dropped

(* Reorder faults are pairwise swaps: a held delivery waits (keyed by
   direction + role) for the next signal heading the same way, and is
   released right after it. A DES flush event bounds the hold so a lone
   held signal is delayed, not lost; the physical-equality check keeps a
   stale flush from releasing a later hold on the same key. *)
let release_held t key =
  match Hashtbl.find_opt t.held key with
  | Some deliver ->
    Hashtbl.remove t.held key;
    deliver ()
  | None -> ()

let hold_signal t key ~within deliver =
  match Hashtbl.find_opt t.held key with
  | Some _ ->
    (* Already holding one: deliver the newcomer first, then the held
       one — the swap the rule asked for. *)
    deliver ();
    release_held t key
  | None ->
    Hashtbl.replace t.held key deliver;
    ignore
      (Des.Engine.schedule t.des ~delay:within (fun () ->
           match Hashtbl.find_opt t.held key with
           | Some d when d == deliver ->
             Hashtbl.remove t.held key;
             d ()
           | Some _ | None -> ()))

(* Decide one signal's fate at the capsule/streamer border. [deliver]
   performs the un-faulted delivery; [dir] disambiguates the two
   directions in the reorder key space. *)
let apply_signal_fate t ~dir ~role ~sport deliver =
  match t.faults with
  | None -> deliver ()
  | Some inj when not (Fault.Injector.has_signal_rules inj) -> deliver ()
  | Some inj ->
    let now = Des.Engine.now t.des in
    let key = dir ^ role in
    (match Fault.Injector.signal_fate inj ~role ~sport ~now with
     | Fault.Injector.Pass ->
       deliver ();
       release_held t key
     | Fault.Injector.Lose ->
       drop_signal t;
       release_held t key
     | Fault.Injector.Postpone extra ->
       ignore (Des.Engine.schedule t.des ~delay:extra deliver);
       release_held t key
     | Fault.Injector.Duplicate ->
       deliver ();
       deliver ();
       release_held t key
     | Fault.Injector.Hold within -> hold_signal t key ~within deliver)

let note_signal_to_capsule (t : t) si event =
  t.signals_to_capsules <- t.signals_to_capsules + 1;
  Obs.Metrics.incr t.m_to_capsules;
  Obs.Flightrec.record ~kind:Obs.Flightrec.k_signal_to_capsule
    ~a:si.flight_id
    ~b:(Obs.Flightrec.intern (Statechart.Event.signal event))
    ~sim:(Des.Engine.now t.des);
  if Obs.Tracer.enabled () then
    Obs.Tracer.instant ~track:si.role ~cat:"hybrid" ~name:"signal_to_capsule"
      ~args:[ ("signal", Obs.Tracer.Str (Statechart.Event.signal event)) ]
      ~sim_time:(Des.Engine.now t.des) ()

(* Streamer -> capsule direction: inject through the linked border port. *)
let emit_signal t si ~sport event =
  match Streamer.find_sport si.def sport with
  | None ->
    invalid_arg
      (Printf.sprintf "Hybrid.Engine: streamer %s has no SPort %S" si.role sport)
  | Some sp ->
    if not (Umlrt.Protocol.can_send sp.Streamer.protocol
              ~conjugated:sp.Streamer.conjugated (Statechart.Event.signal event))
    then
      invalid_arg
        (Printf.sprintf "Hybrid.Engine: SPort %s.%s cannot send signal %S"
           si.role sport (Statechart.Event.signal event));
    let deliver () =
      match (find_link t ~role:si.role ~sport, t.runtime) with
      | Some link, Some rt ->
        (* Route INWARD from the border port. A plain [inject] would hand
           unconnected borders back to the environment listener, which
           would bounce the signal straight back to this streamer. *)
        let root = Umlrt.Runtime.root_path rt in
        (match Umlrt.Runtime.resolve rt ~path:root ~port:link.l_border with
         | Umlrt.Runtime.To_instance (path, port) ->
           note_signal_to_capsule t si event;
           ignore (Umlrt.Runtime.deliver_to rt ~path ~port event)
         | Umlrt.Runtime.To_environment port ->
           (* Border End port owned by the root's own behaviour? *)
           (match t.root_class with
            | Some cls
              when (match Umlrt.Capsule.find_port cls port with
                    | Some decl ->
                      decl.Umlrt.Capsule.kind = Umlrt.Capsule.End
                      && Umlrt.Capsule.behavior cls <> None
                    | None -> false) ->
              note_signal_to_capsule t si event;
              ignore (Umlrt.Runtime.deliver_to rt ~path:root ~port event)
            | Some _ | None ->
              (* Nothing inside listens on this border: true environment. *)
              Queue.push (port, event) t.outbox)
         | Umlrt.Runtime.Unconnected -> drop_signal t)
      | Some _, None | None, _ -> drop_signal t
    in
    apply_signal_fate t ~dir:"s2c:" ~role:si.role ~sport deliver

let control_of t si =
  { Strategy.set_param = Solver.set_param si.solver;
    get_param = Solver.get_param si.solver;
    get_state = (fun () -> Solver.state si.solver);
    set_state = Solver.set_state si.solver;
    set_rhs = Solver.set_rhs si.solver;
    emit = (fun ~sport event -> emit_signal t si ~sport event);
    now = (fun () -> Des.Engine.now t.des) }

let guard_decl si id =
  List.find_opt
    (fun (g : Streamer.guard_decl) -> String.equal g.Streamer.guard_id id)
    si.spec.Streamer.guards

let solver_guards (spec : Streamer.solver_spec) =
  List.map
    (fun (g : Streamer.guard_decl) ->
       { Solver.guard_name = g.Streamer.guard_id;
         direction = g.Streamer.direction;
         expr = g.Streamer.expr })
    spec.Streamer.guards

let on_crossing t si (crossing : Ode.Events.crossing) =
  match guard_decl si crossing.Ode.Events.guard_name with
  | None -> ()
  | Some g ->
    Obs.Flightrec.record ~kind:Obs.Flightrec.k_crossing ~a:si.flight_id
      ~b:(Obs.Flightrec.intern crossing.Ode.Events.guard_name)
      ~sim:crossing.Ode.Events.time;
    let value =
      match g.Streamer.payload with
      | Some f ->
        f (Solver.env si.solver) crossing.Ode.Events.time crossing.Ode.Events.state
      | None -> Dataflow.Value.Unit
    in
    emit_signal t si ~sport:g.Streamer.via_sport
      (Statechart.Event.make ~value g.Streamer.signal)

let ignore_crossing (_ : Ode.Events.crossing) = ()

(* Bring the solver's continuous state up to the present, emitting any
   zero-crossing signals located on the way. Guards whose expression only
   depends on input DPorts are constant within one integration interval,
   so their crossings happen invisibly *between* syncs; a tick-boundary
   edge check against the previous sync's values catches those.

   The solver carries its guard closures pre-compiled (set at
   instantiation), and the guard bookkeeping lives in flat arrays, so
   the guard-free steady state allocates nothing here. *)
let sync_solver_body t si =
  let now = Des.Engine.now t.des in
  Obs.Flightrec.record ~kind:Obs.Flightrec.k_solver_advance ~a:si.flight_id
    ~b:Obs.Flightrec.no_label ~sim:now;
  let ng = Array.length si.garr in
  if ng = 0 then begin
    if Obs.Tracer.enabled () then begin
      let steps_before = Solver.steps_taken si.solver in
      let start = Obs.Tracer.now_ns () in
      Solver.advance_prepared si.solver ~until:now ~on_crossing:ignore_crossing;
      Obs.Tracer.complete ~track:si.role ~cat:"ode" ~name:"solver.advance"
        ~args:[ ("steps", Obs.Tracer.Int (Solver.steps_taken si.solver - steps_before)) ]
        ~sim_time:now ~start_ns:start ()
    end
    else Solver.advance_prepared si.solver ~until:now ~on_crossing:ignore_crossing
  end
  else begin
    Array.fill si.gfired 0 ng false;
    let advance () =
      Solver.advance_prepared si.solver ~until:now
        ~on_crossing:(fun c ->
            let name = c.Ode.Events.guard_name in
            for i = 0 to ng - 1 do
              if String.equal si.garr.(i).Streamer.guard_id name then
                si.gfired.(i) <- true
            done;
            on_crossing t si c)
    in
    if Obs.Tracer.enabled () then begin
      let steps_before = Solver.steps_taken si.solver in
      let start = Obs.Tracer.now_ns () in
      advance ();
      Obs.Tracer.complete ~track:si.role ~cat:"ode" ~name:"solver.advance"
        ~args:[ ("steps", Obs.Tracer.Int (Solver.steps_taken si.solver - steps_before)) ]
        ~sim_time:now ~start_ns:start ()
    end
    else advance ();
    let env = Solver.env si.solver in
    let state = Solver.state_view si.solver in
    let time = Solver.time si.solver in
    for i = 0 to ng - 1 do
      let g = si.garr.(i) in
      let v = g.Streamer.expr env time state in
      if si.gprimed && not si.gfired.(i)
         && Ode.Events.sign_change_dir g.Streamer.direction si.gprev.(i) v
      then
        on_crossing t si
          { Ode.Events.guard_name = g.Streamer.guard_id; time;
            state = Solver.state si.solver };
      si.gprev.(i) <- v
    done;
    si.gprimed <- true
  end

(* Solver advance under the profiler: the nested frame attributes
   integration cost to the kernel slot (shared across streamers with the
   same method), leaving the streamer slot with routing/output self
   time. Disabled, this is one load + branch in front of the body. *)
let sync_solver t si =
  if Obs.Profile.enabled () then begin
    Obs.Profile.enter si.prof_solver;
    sync_solver_body t si;
    Obs.Profile.exit_ si.prof_solver
  end
  else sync_solver_body t si

(* ---- supervision ----

   Solver faults (step underflow, step-budget exhaustion, a non-finite
   state) are caught at the step boundary and routed to the configured
   policy instead of killing the run. Degradation is dispatched through
   the streamer's own strategy as an ordinary signal, so fallback modes
   live in the model. *)

let effective_degrade_signal t =
  match t.degrade_signal with
  | Some s -> s
  | None -> Strategy.degrade_signal

let mark_degraded t si =
  if Float.is_nan si.degraded_since then begin
    si.degraded_since <- Des.Engine.now t.des;
    ignore
      (Strategy.handle (Streamer.strategy si.def) (control_of t si)
         (Statechart.Event.make (effective_degrade_signal t)))
  end

(* Solver state summary for crash reports — evaluated lazily, only when
   a report is actually written. *)
let solver_context t si () =
  Obs.Json.Obj
    [ ("role", Obs.Json.Str si.role);
      ("sim_time", Obs.Json.Float (Des.Engine.now t.des));
      ("solver_time", Obs.Json.Float (Solver.time si.solver));
      ("steps_taken", Obs.Json.Int (Solver.steps_taken si.solver));
      ("state",
       Obs.Json.List
         (Array.to_list
            (Array.map (fun v -> Obs.Json.Float v) (Solver.state si.solver))));
      ("state_finite", Obs.Json.Bool (Solver.state_finite si.solver));
      ("ticks", Obs.Json.Int si.ticks);
      ("frozen", Obs.Json.Bool si.frozen) ]

let handle_solver_fault t si policy ~reason reraise =
  t.solver_faults <- t.solver_faults + 1;
  Obs.Flightrec.record ~kind:Obs.Flightrec.k_fault ~a:si.flight_id
    ~b:(Obs.Flightrec.intern reason) ~sim:(Des.Engine.now t.des);
  if Obs.Tracer.enabled () then
    Obs.Tracer.instant ~track:si.role ~cat:"fault" ~name:"solver_fault"
      ~sim_time:(Des.Engine.now t.des) ();
  (* Divergence and escalation are post-mortem events: snapshot before
     the policy acts (escalation unwinds; restart destroys the offending
     state). No-op unless a crash directory is configured. *)
  if policy = Fault.Supervisor.Escalate || String.equal reason "solver_divergence"
  then
    ignore
      (Obs.Crash_report.trigger ~reason ~role:si.role
         ~context:(solver_context t si) ());
  (* Escalation re-raises before any degraded-mode dispatch: the run is
     over, the strategy must not observe a half-supervised state. *)
  (match policy with Fault.Supervisor.Escalate -> reraise () | _ -> ());
  mark_degraded t si;
  match policy with
  | Fault.Supervisor.Restart ->
    (* Clock AND state: step underflow strands the integrator
       mid-interval, and restarting only the state would replay the same
       doomed interval forever. *)
    Solver.reset si.solver ~t0:(Des.Engine.now t.des) si.spec.Streamer.init;
    t.supervisor_restarts <- t.supervisor_restarts + 1;
    Fault.Supervisor.note_restart ()
  | Fault.Supervisor.Freeze_last -> si.frozen <- true
  | Fault.Supervisor.Escalate -> ()

(* Solver synchronization with the fault layer in front: a stall rule
   suspends integration (the solver catches up when the window closes),
   and with a supervisor installed the sync runs under watch. Both
   gates are single loads + branches when the fault layer is off. *)
let sync_streamer t si =
  let stalled =
    match t.faults with
    | Some inj ->
      Fault.Injector.has_solver_rules inj
      && Fault.Injector.solver_stalled inj ~target:si.role
           ~now:(Des.Engine.now t.des)
    | None -> false
  in
  if not stalled then
    match t.supervisor with
    | None -> sync_solver t si
    | Some policy ->
      (try sync_solver t si with
       | Ode.Adaptive.Step_underflow _ as e ->
         handle_solver_fault t si policy ~reason:"solver_step_underflow"
           (fun () -> raise e)
       | Ode.Adaptive.Too_many_steps _ as e ->
         handle_solver_fault t si policy ~reason:"solver_step_budget"
           (fun () -> raise e));
      if not si.frozen && not (Solver.state_finite si.solver) then
        handle_solver_fault t si policy ~reason:"solver_divergence"
          (fun () -> raise (Diverged si.role))

let record_traces t si =
  match si.traces with
  | [] -> ()
  | traces ->
    let now = Des.Engine.now t.des in
    List.iter
      (fun (port, trace) ->
         match Dataflow.Graph.output_port si.node port with
         | Some p ->
           (match Dataflow.Port.read_float p with
            | Some v -> Sigtrace.Trace.record trace now v
            | None -> ())
         | None -> ())
      traces

let write_outputs t si =
  match si.outplan with
  | Out_fast cells ->
    (* Pre-resolved state->port triples: plain float stores, then the
       compiled routing plan. Zero allocation when no traces are on and
       no flow-fault rules exist (one load + branch decides). *)
    let y = Solver.state_view si.solver in
    let n = Array.length cells in
    (match t.faults with
     | Some inj when Fault.Injector.has_flow_rules inj ->
       let now = Des.Engine.now t.des in
       for i = 0 to n - 1 do
         let (idx, p, cell) = cells.(i) in
         let target = si.out_names.(i) in
         if not (Fault.Injector.flow_frozen inj ~target ~now) then begin
           cell.(0) <- Fault.Injector.flow_value inj ~target ~now y.(idx);
           Dataflow.Port.note_float_write p
         end
       done
     | Some _ | None ->
       for i = 0 to n - 1 do
         let (idx, p, cell) = cells.(i) in
         cell.(0) <- y.(idx);
         Dataflow.Port.note_float_write p
       done);
    Obs.Flightrec.record ~kind:Obs.Flightrec.k_flow_write ~a:si.flight_id
      ~b:Obs.Flightrec.no_label ~sim:(Des.Engine.now t.des);
    ignore (Dataflow.Graph.propagate_from t.graph si.node);
    record_traces t si;
    Obs.Metrics.add t.m_flow_samples n
  | Out_fn f ->
    let now = Des.Engine.now t.des in
    let state = Solver.state si.solver in
    let outs = f (Solver.env si.solver) now state in
    List.iter
      (fun (port, value) ->
         match Dataflow.Graph.output_port si.node port with
         | Some p ->
           (match t.faults with
            | Some inj when Fault.Injector.has_flow_rules inj ->
              let target = si.role ^ "." ^ port in
              if not (Fault.Injector.flow_frozen inj ~target ~now) then
                Dataflow.Port.write p
                  (Dataflow.Value.map_float
                     (fun v -> Fault.Injector.flow_value inj ~target ~now v)
                     value)
            | Some _ | None -> Dataflow.Port.write p value)
         | None ->
           invalid_arg
             (Printf.sprintf "Hybrid.Engine: streamer %s writes unknown DPort %S"
                si.role port))
      outs;
    Obs.Flightrec.record ~kind:Obs.Flightrec.k_flow_write ~a:si.flight_id
      ~b:Obs.Flightrec.no_label ~sim:now;
    ignore (Dataflow.Graph.propagate_from t.graph si.node);
    record_traces t si;
    Obs.Metrics.add t.m_flow_samples (List.length outs)

let tick_body t si =
  if Obs.Tracer.enabled () then begin
    let start = Obs.Tracer.now_ns () in
    sync_streamer t si;
    if not si.frozen then write_outputs t si;
    Obs.Tracer.complete ~track:si.role ~cat:"hybrid" ~name:"tick"
      ~sim_time:(Des.Engine.now t.des) ~start_ns:start ()
  end
  else begin
    sync_streamer t si;
    if not si.frozen then write_outputs t si
  end

let tick t si =
  (* A frozen streamer (Freeze_last policy) stops integrating and holds
     its last outputs; its thread keeps ticking so recovery is possible
     and the tick accounting stays uniform. *)
  if not si.frozen then begin
    (* No separate k_tick record here: every live tick immediately
       records k_solver_advance in [sync_solver], and one entry per tick
       keeps the always-on recorder inside its overhead budget. k_tick
       marks ticks recorded outside the solver path (tests, tools). *)
    if Obs.Profile.enabled () then begin
      Obs.Profile.enter si.prof_id;
      tick_body t si;
      Obs.Profile.exit_ si.prof_id
    end
    else tick_body t si
  end;
  si.ticks <- si.ticks + 1;
  Obs.Metrics.incr t.m_ticks;
  Obs.Telemetry.on_tick ~sim:(Des.Engine.now t.des)

(* Capsule -> streamer delivery (after channel latency): synchronize the
   solver, then let the strategy interpret the signal. *)
let deliver_to_streamer t si (sport, event) =
  ignore sport;
  if not si.frozen then sync_streamer t si;
  t.signals_to_streamers <- t.signals_to_streamers + 1;
  Obs.Metrics.incr t.m_to_streamers;
  Obs.Flightrec.record ~kind:Obs.Flightrec.k_signal_to_streamer
    ~a:si.flight_id
    ~b:(Obs.Flightrec.intern (Statechart.Event.signal event))
    ~sim:(Des.Engine.now t.des);
  (* The streamer-side reaction point of a causal chain: measure
     stimulus→reaction latency against the cause's birth stamp. *)
  Obs.Profile.note_streamer_reaction ();
  if Obs.Tracer.enabled () then
    Obs.Tracer.instant ~track:si.role ~cat:"hybrid" ~name:"signal_to_streamer"
      ~args:[ ("signal", Obs.Tracer.Str (Statechart.Event.signal event)) ]
      ~sim_time:(Des.Engine.now t.des) ();
  if not (Strategy.handle (Streamer.strategy si.def) (control_of t si) event) then
    drop_signal t;
  (* A strategy reaction can poison the continuous state (e.g. a faulted
     parameter write feeding a NaN into the next reselection). Under
     supervision, detect it at the delivery — while the ambient cause is
     still the chain that carried the signal — instead of at the next
     periodic tick, where the attribution would be lost. Unsupervised
     runs keep the historical behaviour bit for bit. *)
  match t.supervisor with
  | Some policy when not si.frozen && not (Solver.state_finite si.solver) ->
    handle_solver_fault t si policy ~reason:"solver_divergence"
      (fun () -> raise (Diverged si.role))
  | Some _ | None -> ()

let fresh_seed t =
  t.seed_counter <- t.seed_counter + 1;
  0x51e4 + (t.seed_counter * 7919)

let rec instantiate t ~path (def : Streamer.t) =
  match Streamer.behavior def with
  | Streamer.Equations spec ->
    let inputs =
      List.filter_map
        (fun (d : Streamer.dport_decl) ->
           match d.Streamer.direction with
           | `In -> Some (d.Streamer.dname, d.Streamer.dtype)
           | `Out -> None)
        (Streamer.dports def)
    in
    let outputs =
      List.filter_map
        (fun (d : Streamer.dport_decl) ->
           match d.Streamer.direction with
           | `Out -> Some (d.Streamer.dname, d.Streamer.dtype)
           | `In -> None)
        (Streamer.dports def)
    in
    let node = Dataflow.Graph.add_node t.graph ~name:path ~inputs ~outputs in
    (* Input DPort reads resolve the port handle once per distinct name:
       a pointer-equality cache keyed on the name (rhs closures pass the
       same string literal every evaluation) bypasses the graph lookup on
       the hot path. *)
    let input_cache = ref [||] in
    let resolve_input name =
      match Dataflow.Graph.input_port node name with
      | Some p ->
        let arr = !input_cache in
        if Array.length arr < 64 then
          input_cache := Array.append arr [| (name, p) |];
        p
      | None ->
        failwith
          (Printf.sprintf "Hybrid.Engine: streamer %s reads unknown DPort %S" path name)
    in
    let input_fn name =
      let arr = !input_cache in
      let n = Array.length arr in
      let rec scan i =
        if i >= n then Dataflow.Port.read_float_default (resolve_input name) 0.
        else begin
          let (k, p) = arr.(i) in
          if k == name then Dataflow.Port.read_float_default p 0. else scan (i + 1)
        end
      in
      scan 0
    in
    let solver =
      Solver.create ~method_:spec.Streamer.method_
        ?rhs_into:spec.Streamer.rhs_into ~dim:spec.Streamer.dim
        ~init:spec.Streamer.init ~params:spec.Streamer.params ~input:input_fn
        ~clock:t.clock ~t0:(Des.Engine.now t.des) spec.Streamer.rhs
    in
    Solver.set_guards solver (solver_guards spec);
    let outplan, out_names =
      match spec.Streamer.outputs with
      | Streamer.Output_fn f -> (Out_fn f, [||])
      | Streamer.Output_states mapping ->
        let resolved =
          Array.map
            (fun (idx, pname) ->
               match Dataflow.Graph.output_port node pname with
               | Some p when Dataflow.Port.is_scalar_float p ->
                 Some (idx, p, Dataflow.Port.fcell p)
               | Some _ | None -> None)
            mapping
        in
        if Array.for_all Option.is_some resolved then
          ( Out_fast (Array.map Option.get resolved),
            Array.map (fun (_, pname) -> path ^ "." ^ pname) mapping )
        else
          (* Unknown or non-scalar port: fall back to the boxed path so
             the historical error/coercion behaviour is preserved. *)
          (Out_fn (Streamer.run_output_map spec.Streamer.outputs), [||])
    in
    let channel =
      Rt.Channel.create t.des ~model:t.signal_latency
        ~drop_probability:t.signal_drop_probability ~seed:(fresh_seed t) path
    in
    let ng = List.length spec.Streamer.guards in
    let si =
      { role = path; flight_id = Obs.Flightrec.intern path;
        prof_id = Obs.Profile.register ~kind:Obs.Profile.k_streamer path;
        prof_solver =
          Obs.Profile.register ~kind:Obs.Profile.k_solver
            (Ode.Integrator.method_name spec.Streamer.method_);
        def; spec; solver; node; outplan; channel; ticks = 0;
        traces = []; garr = Array.of_list spec.Streamer.guards;
        gprev = Array.make ng 0.; gfired = Array.make ng false;
        gprimed = false; out_names; frozen = false;
        degraded_since = Float.nan }
    in
    Des.Mailbox.set_listener (Rt.Channel.mailbox channel)
      (fun mb ->
         match Des.Mailbox.pop mb with
         | Some msg -> deliver_to_streamer t si msg
         | None -> ());
    Hashtbl.replace t.streamers path si;
    t.roles <- path :: t.roles;
    Hashtbl.replace t.nodes_by_name path node;
    List.iter (fun d -> register_port t path d node) (Streamer.dports def)
  | Streamer.Composite { children; internal_flows } ->
    (* Border DPorts become pass-through junctions; children get dotted
       role paths; internal flows are wired below. *)
    List.iter
      (fun (d : Streamer.dport_decl) ->
         let jname = key path d.Streamer.dname in
         let node = Dataflow.Graph.add_junction t.graph ~name:jname d.Streamer.dtype in
         Hashtbl.replace t.nodes_by_name jname node;
         Hashtbl.replace t.dport_map (key path d.Streamer.dname)
           { pnode = node; in_name = Some "in"; out_name = Some "out1" })
      (Streamer.dports def);
    List.iter (fun (child, sub) -> instantiate t ~path:(path ^ "." ^ child) sub) children;
    List.iter
      (fun ((src : Streamer.endpoint), (dst : Streamer.endpoint)) ->
         let resolve (ep : Streamer.endpoint) =
           match ep.Streamer.child with
           | None -> key path ep.Streamer.port
           | Some c -> key (path ^ "." ^ c) ep.Streamer.port
         in
         let src_entry = Hashtbl.find t.dport_map (resolve src) in
         let dst_entry = Hashtbl.find t.dport_map (resolve dst) in
         match (src_entry.out_name, dst_entry.in_name) with
         | Some sp, Some dp ->
           Dataflow.Graph.connect_exn t.graph
             ~src:(src_entry.pnode, sp) ~dst:(dst_entry.pnode, dp)
         | None, _ | _, None ->
           invalid_arg
             (Printf.sprintf "Hybrid.Engine: internal flow in %s has wrong direction" path))
      internal_flows

let add_streamer t ~role def =
  if t.started then invalid_arg "Hybrid.Engine.add_streamer: engine already started";
  if Hashtbl.mem t.nodes_by_name role || Hashtbl.mem t.streamers role then
    invalid_arg (Printf.sprintf "Hybrid.Engine.add_streamer: duplicate role %S" role);
  (match Streamer.validate def with
   | [] -> ()
   | errors -> raise (Invalid_streamer errors));
  instantiate t ~path:role def

let add_relay t ~name dtype ~fanout =
  if Hashtbl.mem t.nodes_by_name name then
    invalid_arg (Printf.sprintf "Hybrid.Engine.add_relay: duplicate name %S" name);
  let node = Dataflow.Graph.add_relay t.graph ~name dtype ~fanout in
  Hashtbl.replace t.nodes_by_name name node

let add_junction t ~name dtype =
  if Hashtbl.mem t.nodes_by_name name then
    invalid_arg (Printf.sprintf "Hybrid.Engine.add_junction: duplicate name %S" name);
  let node = Dataflow.Graph.add_junction t.graph ~name dtype in
  Hashtbl.replace t.nodes_by_name name node

let lookup_endpoint t (name, port) ~want_output =
  match Hashtbl.find_opt t.dport_map (key name port) with
  | Some entry ->
    let pick = if want_output then entry.out_name else entry.in_name in
    (match pick with
     | Some graph_port -> Ok (entry.pnode, graph_port)
     | None ->
       Error
         (Printf.sprintf "%s.%s is not an %s DPort" name port
            (if want_output then "output" else "input")))
  | None ->
    (match Hashtbl.find_opt t.nodes_by_name name with
     | Some node ->
       let present =
         if want_output then Dataflow.Graph.output_port node port
         else Dataflow.Graph.input_port node port
       in
       (match present with
        | Some _ -> Ok (node, port)
        | None -> Error (Printf.sprintf "node %s has no %s port %S" name
                           (if want_output then "output" else "input") port))
     | None -> Error (Printf.sprintf "unknown flow endpoint %s.%s" name port))

let connect_flow t ~src ~dst =
  match (lookup_endpoint t src ~want_output:true, lookup_endpoint t dst ~want_output:false) with
  | Ok s, Ok d ->
    (match Dataflow.Graph.connect t.graph ~src:s ~dst:d with
     | Ok () -> Ok ()
     | Error e -> Error (Dataflow.Graph.error_to_string e))
  | Error e, _ | _, Error e -> Error e

let connect_flow_exn t ~src ~dst =
  match connect_flow t ~src ~dst with
  | Ok () -> ()
  | Error e -> raise (Invalid_link e)

let link_sport t ~role ~sport ~border_port =
  let si = Hashtbl.find_opt t.streamers role in
  let sport_decl =
    match si with Some s -> Streamer.find_sport s.def sport | None -> None
  in
  let border_decl =
    match t.root_class with
    | Some cls -> Umlrt.Capsule.find_port cls border_port
    | None -> None
  in
  match si with
  | None -> Error (Printf.sprintf "R4: unknown streamer role %S" role)
  | Some _ ->
    (match Check.sport_link_errors ~sport:sport_decl ~border:border_decl ~role
             ~sport_name:sport ~border_port with
     | [] ->
       t.links <- { l_role = role; l_sport = sport; l_border = border_port } :: t.links;
       Ok ()
     | e :: _ -> Error e)

(* Sharded runtime: the streamer behind this border port lives on
   another domain; capsule sends to it leave through [send] (an SPSC
   push) instead of a local channel. *)
let link_sport_remote t ~role ~sport ~border_port ~send =
  Hashtbl.replace t.remote_links border_port (role, sport, send)

(* Sharded runtime, receiving side: a cross-shard signal sent at
   [sent] arrives through the streamer's own channel so latency
   sampling, stats and mailbox FIFO order are identical to a local
   send — only the scheduling anchor differs (the original send time,
   not the current clock). *)
let deliver_remote t ~role ~sport ~sent event =
  match Hashtbl.find_opt t.streamers role with
  | Some si -> Rt.Channel.send_stamped si.channel ~sent (sport, event)
  | None -> drop_signal t

let link_sport_exn t ~role ~sport ~border_port =
  match link_sport t ~role ~sport ~border_port with
  | Ok () -> ()
  | Error e -> raise (Invalid_link e)

let route_border_message t ~port event =
  match find_link_by_border t port with
  | Some link ->
    (match Hashtbl.find_opt t.streamers link.l_role with
     | Some si ->
       apply_signal_fate t ~dir:"c2s:" ~role:si.role ~sport:link.l_sport
         (fun () -> Rt.Channel.send si.channel (link.l_sport, event))
     | None -> drop_signal t)
  | None ->
    (match Hashtbl.find_opt t.remote_links port with
     | Some (role, sport, send) ->
       apply_signal_fate t ~dir:"c2s:" ~role ~sport (fun () -> send event)
     | None -> Queue.push (port, event) t.outbox)

let prime_guards si =
  let ng = Array.length si.garr in
  if ng > 0 then begin
    let env = Solver.env si.solver in
    let state = Solver.state_view si.solver in
    let time = Solver.time si.solver in
    for i = 0 to ng - 1 do
      si.gprev.(i) <- si.garr.(i).Streamer.expr env time state
    done;
    si.gprimed <- true
  end

(* [start] in two phases so the shard coordinator can interleave them
   across engines: phase one installs the border interceptor, writes
   initial outputs, primes guards and arms the tick timers; phase two
   starts the capsule behaviours. The telemetry seq-0 record sits
   exactly between the phases — in a sharded run the coordinator runs
   phase one on EVERY shard, emits the merged seq-0 record itself, then
   runs phase two everywhere, so the baseline record's content (initial
   outputs written, tick timers armed, no behaviours yet) is the same
   sum the single-domain record reads. *)
let start_outputs t =
  if not t.outputs_started then begin
    t.outputs_started <- true;
    (match t.runtime with
     | Some rt ->
       Umlrt.Runtime.set_environment_listener rt (fun ~port event ->
           route_border_message t ~port event)
     | None -> ());
    let leaves = List.rev t.roles in
    List.iter
      (fun role ->
         match Hashtbl.find_opt t.streamers role with
         | None -> ()
         | Some si ->
           write_outputs t si;
           prime_guards si;
           ignore
             (Des.Timer.periodic t.des ~name:role ~period:(Streamer.rate si.def)
                (fun _ -> tick t si)))
      leaves
  end

let start_rest t =
  if not t.started then begin
    t.started <- true;
    (match t.runtime with
     | Some rt -> Umlrt.Runtime.start_behaviors rt
     | None -> ())
  end

let start t =
  if not t.started then begin
    start_outputs t;
    (* Telemetry: a seq-0 record at start (so every stream opens with
       its baseline); the sim-time cadence is driven by the DES loop
       itself ([Obs.Telemetry.advance_before] in [Des.Engine.step]), so
       records are cut at quiescent points — a pure function of the
       event history, reproducible by the sharded coordinator. The
       emitter only reads runtime state — a run with telemetry on stays
       bit-identical to one without. *)
    if Obs.Telemetry.enabled () then
      Obs.Telemetry.begin_stream ~sim:(Des.Engine.now t.des);
    start_rest t
  end

let run_until t time =
  start t;
  ignore (Des.Engine.run_until t.des time)

let tick_now t ~role =
  match Hashtbl.find t.streamers role with
  | si -> tick t si
  | exception Not_found ->
    invalid_arg (Printf.sprintf "Hybrid.Engine.tick_now: unknown role %S" role)

let inject t ~port event =
  match t.runtime with
  | Some rt -> Umlrt.Runtime.inject rt ~port event
  | None -> invalid_arg "Hybrid.Engine.inject: engine has no capsule side"

let drain_outbox t =
  let items = List.of_seq (Queue.to_seq t.outbox) in
  Queue.clear t.outbox;
  items

let streamer_roles t = List.rev t.roles

let solver_of t role =
  Option.map (fun si -> si.solver) (Hashtbl.find_opt t.streamers role)

let ticks_of t role =
  match Hashtbl.find_opt t.streamers role with
  | Some si -> si.ticks
  | None -> 0

let trace_dport t ~role ~dport =
  match Hashtbl.find_opt t.streamers role with
  | None -> invalid_arg (Printf.sprintf "Hybrid.Engine.trace_dport: unknown role %S" role)
  | Some si ->
    (match List.assoc_opt dport si.traces with
     | Some trace -> trace
     | None ->
       (match Dataflow.Graph.output_port si.node dport with
        | None ->
          invalid_arg
            (Printf.sprintf "Hybrid.Engine.trace_dport: %s has no output DPort %S"
               role dport)
        | Some _ ->
          let trace =
            Sigtrace.Trace.create ~name:(Printf.sprintf "%s.%s" role dport) ()
          in
          si.traces <- (dport, trace) :: si.traces;
          trace))

let read_dport_entry t ~role ~dport =
  match Hashtbl.find_opt t.dport_map (key role dport) with
  | None -> None
  | Some entry ->
    let port =
      match entry.out_name with
      | Some name -> Dataflow.Graph.output_port entry.pnode name
      | None ->
        (match entry.in_name with
         | Some name -> Dataflow.Graph.input_port entry.pnode name
         | None -> None)
    in
    (match port with
     | Some p -> Dataflow.Port.read_float p
     | None -> None)

let trace_sampled t ~role ~dport ~period =
  if period <= 0. then
    invalid_arg "Hybrid.Engine.trace_sampled: period must be positive";
  if not (Hashtbl.mem t.dport_map (key role dport)) then
    invalid_arg
      (Printf.sprintf "Hybrid.Engine.trace_sampled: unknown DPort %s.%s" role dport);
  let trace =
    Sigtrace.Trace.create ~name:(Printf.sprintf "%s.%s (sampled)" role dport) ()
  in
  ignore
    (Des.Timer.periodic t.des ~period (fun _ ->
         match read_dport_entry t ~role ~dport with
         | Some v -> Sigtrace.Trace.record trace (Des.Engine.now t.des) v
         | None -> ()));
  trace

let read_dport t ~role ~dport = read_dport_entry t ~role ~dport

let thread_set t =
  List.map
    (fun role ->
       match Hashtbl.find_opt t.streamers role with
       | Some si -> (role, Streamer.rate si.def)
       | None -> (role, 0.))
    (streamer_roles t)

let stats t =
  let ticks_total =
    Hashtbl.fold (fun _ si acc -> acc + si.ticks) t.streamers 0
  in
  { ticks_total;
    signals_to_streamers = t.signals_to_streamers;
    signals_to_capsules = t.signals_to_capsules;
    signals_dropped = t.signals_dropped }

(* ---- fault layer configuration ---- *)

let set_faults t inj = t.faults <- inj
let faults t = t.faults

let set_supervisor t ?degrade_signal policy =
  t.supervisor <- Some policy;
  match degrade_signal with
  | Some s -> t.degrade_signal <- Some s
  | None -> ()

let apply_fault_spec t spec =
  let inj = Fault.Injector.create spec in
  t.faults <- Some inj;
  (match spec.Fault.Spec.policy with
   | Some p -> t.supervisor <- Some p
   | None -> ());
  (match spec.Fault.Spec.degrade_signal with
   | Some s ->
     t.degrade_signal <- Some s;
     (* A degrade signal implies supervision; detection must be armed for
        the signal to ever fire. *)
     (match t.supervisor with
      | None -> t.supervisor <- Some Fault.Supervisor.Restart
      | Some _ -> ())
   | None -> ());
  inj

let solver_faults t = t.solver_faults
let supervisor_restarts t = t.supervisor_restarts

let degraded_time t =
  let now = Des.Engine.now t.des in
  let total =
    Hashtbl.fold
      (fun _ si acc ->
         if Float.is_nan si.degraded_since then acc
         else acc +. (now -. si.degraded_since))
      t.streamers 0.
  in
  Fault.Supervisor.set_degraded_time total;
  total

let degraded_roles t =
  List.filter
    (fun role ->
       match Hashtbl.find_opt t.streamers role with
       | Some si -> not (Float.is_nan si.degraded_since)
       | None -> false)
    (streamer_roles t)
