(** The [streamer] stereotype: the capsule-like container for
    time-continuous behaviour.

    A streamer has DPorts (typed dataflow) and SPorts (protocol signals).
    A {e leaf} streamer's behaviour is a solver computing equations at a
    declared thread rate; a {e composite} streamer contains sub-streamers
    wired by internal flows, its border DPorts relaying in/out (mirroring
    how composite capsules relay signal ports). Streamers never contain
    capsules — rule enforced by this type's construction and re-checked
    by {!Check}. *)

type dport_decl = {
  dname : string;
  direction : [ `In | `Out ];
  dtype : Dataflow.Flow_type.t;
}

val dport_in : ?dtype:Dataflow.Flow_type.t -> string -> dport_decl
(** Default type: scalar float flow. *)

val dport_out : ?dtype:Dataflow.Flow_type.t -> string -> dport_decl

type sport_decl = {
  sname : string;
  protocol : Umlrt.Protocol.t;
  conjugated : bool;
}

val sport : ?conjugated:bool -> string -> Umlrt.Protocol.t -> sport_decl

type guard_decl = {
  guard_id : string;
  signal : string;       (** signal name emitted on crossing *)
  via_sport : string;    (** SPort carrying the signal *)
  direction : Ode.Events.direction;
  expr : Solver.env -> float -> float array -> float;
  payload : (Solver.env -> float -> float array -> Dataflow.Value.t) option;
    (** payload built from (env, crossing time, state) *)
}

type output_fn =
  Solver.env -> float -> float array -> (string * Dataflow.Value.t) list

type output_map =
  | Output_fn of output_fn
      (** arbitrary mapping, run boxed after each tick *)
  | Output_states of (int * string) array
      (** direct (state index, port) pairs — the engine compiles these to
          port handles at instantiation and writes them through the
          scalar-float fast path without allocating *)
(** Which output DPorts to write after each tick. *)

val output_fn : output_fn -> output_map
(** Wrap an arbitrary output closure. *)

val state_outputs : (int * string) list -> output_map
(** Map state components to scalar output ports:
    [state_outputs [(0, "angle"); (1, "speed")]]. *)

val run_output_map :
  output_map -> Solver.env -> float -> float array
  -> (string * Dataflow.Value.t) list
(** Evaluate either form as (port, value) pairs (the boxed reference
    semantics; hot paths bypass this for [Output_states]). *)

type solver_spec = {
  method_ : Ode.Integrator.method_;
  dim : int;
  init : float array;
  params : (string * float) list;
  rhs : Solver.rhs;
  rhs_into : Solver.rhs_into option;
    (** optional allocation-free rhs; see {!Solver.rhs_into} *)
  outputs : output_map;
  guards : guard_decl list;
}

type endpoint = {
  child : string option;  (** [None] = this streamer's own border DPort *)
  port : string;
}

type behavior =
  | Equations of solver_spec
  | Composite of {
      children : (string * t) list;
      internal_flows : (endpoint * endpoint) list;
    }

and t

val leaf :
  ?method_:Ode.Integrator.method_
  -> ?params:(string * float) list
  -> ?guards:guard_decl list
  -> ?strategy:Strategy.t
  -> ?sports:sport_decl list
  -> ?dports:dport_decl list
  -> ?rhs_into:Solver.rhs_into
  -> rate:float
  -> dim:int
  -> init:float array
  -> outputs:output_map
  -> rhs:Solver.rhs
  -> string -> t
(** Leaf streamer with its own solver. [rate] is the tick period of the
    thread it is assigned to (seconds, > 0). Supplying [rhs_into] lets a
    guard-free steady-state tick run without heap allocation. *)

val composite :
  ?sports:sport_decl list
  -> ?dports:dport_decl list
  -> ?rate:float
  -> children:(string * t) list
  -> flows:(endpoint * endpoint) list
  -> string -> t
(** Composite streamer. [rate] defaults to the fastest child's rate. *)

val name : t -> string
val rate : t -> float
val dports : t -> dport_decl list
val sports : t -> sport_decl list
val behavior : t -> behavior
val strategy : t -> Strategy.t
val find_dport : t -> string -> dport_decl option
val find_sport : t -> string -> sport_decl option

val border : string -> endpoint
val child_port : string -> string -> endpoint

val leaf_count : t -> int
(** Number of leaf streamers in this subtree. *)

val validate : t -> string list
(** Structural errors (recursive): duplicate port/child names,
    non-positive rate, init/dim mismatch, guards naming unknown SPorts,
    internal flows touching unknown children/ports, direction mismatches
    on internal flows, DPort flow-type subset violations on internal
    flows. Empty = well-formed. *)
