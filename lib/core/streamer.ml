type dport_decl = {
  dname : string;
  direction : [ `In | `Out ];
  dtype : Dataflow.Flow_type.t;
}

let dport_in ?(dtype = Dataflow.Flow_type.float_flow) dname =
  { dname; direction = `In; dtype }

let dport_out ?(dtype = Dataflow.Flow_type.float_flow) dname =
  { dname; direction = `Out; dtype }

type sport_decl = {
  sname : string;
  protocol : Umlrt.Protocol.t;
  conjugated : bool;
}

let sport ?(conjugated = false) sname protocol = { sname; protocol; conjugated }

type guard_decl = {
  guard_id : string;
  signal : string;
  via_sport : string;
  direction : Ode.Events.direction;
  expr : Solver.env -> float -> float array -> float;
  payload : (Solver.env -> float -> float array -> Dataflow.Value.t) option;
}

type output_fn =
  Solver.env -> float -> float array -> (string * Dataflow.Value.t) list

type output_map =
  | Output_fn of output_fn
  | Output_states of (int * string) array

let output_fn f = Output_fn f

let state_outputs mapping = Output_states (Array.of_list mapping)

let run_output_map m env time y =
  match m with
  | Output_fn f -> f env time y
  | Output_states mapping ->
    Array.to_list
      (Array.map (fun (i, port) -> (port, Dataflow.Value.Float y.(i))) mapping)

type solver_spec = {
  method_ : Ode.Integrator.method_;
  dim : int;
  init : float array;
  params : (string * float) list;
  rhs : Solver.rhs;
  rhs_into : Solver.rhs_into option;
  outputs : output_map;
  guards : guard_decl list;
}

type endpoint = { child : string option; port : string }

type behavior =
  | Equations of solver_spec
  | Composite of {
      children : (string * t) list;
      internal_flows : (endpoint * endpoint) list;
    }

and t = {
  name : string;
  rate : float;
  dports : dport_decl list;
  sports : sport_decl list;
  behavior : behavior;
  strategy : Strategy.t;
}

let name t = t.name
let rate t = t.rate
let dports t = t.dports
let sports t = t.sports
let behavior t = t.behavior
let strategy t = t.strategy

let find_dport t dname = List.find_opt (fun d -> String.equal d.dname dname) t.dports
let find_sport t sname = List.find_opt (fun s -> String.equal s.sname sname) t.sports

let border port = { child = None; port }
let child_port child port = { child = Some child; port }

let leaf ?(method_ = Ode.Integrator.Fixed (Ode.Fixed.Rk4, 1e-3)) ?(params = [])
    ?(guards = []) ?strategy ?(sports = []) ?(dports = []) ?rhs_into ~rate ~dim
    ~init ~outputs ~rhs name =
  if rate <= 0. then invalid_arg "Hybrid.Streamer.leaf: rate must be positive";
  if dim <= 0 then invalid_arg "Hybrid.Streamer.leaf: dim must be positive";
  if Array.length init <> dim then
    invalid_arg "Hybrid.Streamer.leaf: init state dimension mismatch";
  let strategy = match strategy with Some s -> s | None -> Strategy.create () in
  { name; rate; dports; sports;
    behavior =
      Equations
        { method_; dim; init = Array.copy init; params; rhs; rhs_into; outputs;
          guards };
    strategy }

let rec fastest_rate t =
  match t.behavior with
  | Equations _ -> t.rate
  | Composite { children; _ } ->
    List.fold_left (fun acc (_, c) -> Float.min acc (fastest_rate c)) t.rate children

let composite ?(sports = []) ?(dports = []) ?rate ~children ~flows name =
  if children = [] then invalid_arg "Hybrid.Streamer.composite: no children";
  let rate =
    match rate with
    | Some r -> r
    | None ->
      List.fold_left (fun acc (_, c) -> Float.min acc (fastest_rate c)) infinity children
  in
  if rate <= 0. then invalid_arg "Hybrid.Streamer.composite: rate must be positive";
  { name; rate; dports; sports;
    behavior = Composite { children; internal_flows = flows };
    strategy = Strategy.create () }

let rec leaf_count t =
  match t.behavior with
  | Equations _ -> 1
  | Composite { children; _ } ->
    List.fold_left (fun acc (_, c) -> acc + leaf_count c) 0 children

let dup_errors what owner names =
  let sorted = List.sort String.compare names in
  let rec walk acc = function
    | a :: (b :: _ as rest) ->
      let acc =
        if String.equal a b then
          Printf.sprintf "streamer %s: duplicate %s %S" owner what a :: acc
        else acc
      in
      walk acc rest
    | [ _ ] | [] -> acc
  in
  walk [] sorted

let endpoint_to_string = function
  | { child = None; port } -> Printf.sprintf "self.%s" port
  | { child = Some c; port } -> Printf.sprintf "%s.%s" c port

(* Type and direction of an internal-flow endpoint, viewed from inside the
   composite: a border In port produces data inward, a border Out port
   consumes data flowing outward. *)
let endpoint_info t children ep =
  match ep.child with
  | None ->
    (match find_dport t ep.port with
     | None -> Error (Printf.sprintf "unknown border DPort %s" (endpoint_to_string ep))
     | Some d ->
       let role = match d.direction with `In -> `Produces | `Out -> `Consumes in
       Ok (role, d.dtype))
  | Some c ->
    (match List.assoc_opt c children with
     | None -> Error (Printf.sprintf "unknown child %S" c)
     | Some sub ->
       (match find_dport sub ep.port with
        | None -> Error (Printf.sprintf "unknown DPort %s" (endpoint_to_string ep))
        | Some d ->
          let role = match d.direction with `Out -> `Produces | `In -> `Consumes in
          Ok (role, d.dtype)))

let rec validate t =
  let errors = ref [] in
  let err s = errors := s :: !errors in
  List.iter err (dup_errors "DPort" t.name (List.map (fun d -> d.dname) t.dports));
  List.iter err (dup_errors "SPort" t.name (List.map (fun s -> s.sname) t.sports));
  if t.rate <= 0. then err (Printf.sprintf "streamer %s: non-positive rate" t.name);
  (match t.behavior with
   | Equations spec ->
     if Array.length spec.init <> spec.dim then
       err (Printf.sprintf "streamer %s: init/dim mismatch" t.name);
     List.iter
       (fun g ->
          if find_sport t g.via_sport = None then
            err
              (Printf.sprintf "streamer %s: guard %S emits via unknown SPort %S"
                 t.name g.guard_id g.via_sport))
       spec.guards;
     List.iter
       (fun g ->
          match find_sport t g.via_sport with
          | Some sp ->
            if not (Umlrt.Protocol.can_send sp.protocol ~conjugated:sp.conjugated g.signal)
            then
              err
                (Printf.sprintf
                   "streamer %s: guard %S signal %S not sendable on SPort %S"
                   t.name g.guard_id g.signal g.via_sport)
          | None -> ())
       spec.guards
   | Composite { children; internal_flows } ->
     List.iter err (dup_errors "child" t.name (List.map fst children));
     List.iter
       (fun (src, dst) ->
          match (endpoint_info t children src, endpoint_info t children dst) with
          | Error e, _ | _, Error e -> err (Printf.sprintf "streamer %s: %s" t.name e)
          | Ok (srole, stype), Ok (drole, dtype) ->
            if srole <> `Produces then
              err
                (Printf.sprintf "streamer %s: flow source %s is not a producer"
                   t.name (endpoint_to_string src));
            if drole <> `Consumes then
              err
                (Printf.sprintf "streamer %s: flow destination %s is not a consumer"
                   t.name (endpoint_to_string dst));
            if not (Dataflow.Flow_type.compatible ~src:stype ~dst:dtype) then
              err
                (Printf.sprintf
                   "streamer %s: flow %s -> %s: type %s is not a subset of %s"
                   t.name (endpoint_to_string src) (endpoint_to_string dst)
                   (Dataflow.Flow_type.to_string stype)
                   (Dataflow.Flow_type.to_string dtype)))
       internal_flows;
     List.iter (fun (_, c) -> List.iter err (validate c)) children);
  List.rev !errors
