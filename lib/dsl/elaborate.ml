exception Elab_error of string

type elaborated = {
  engine : Hybrid.Engine.t;
  capsule_paths : (string * string) list;
  streamer_roles : string list;
}

(* One shard's view of the system: [shard_of] places every system
   instance (streamer, relay or capsule), [me] selects which placement
   this elaboration builds, the root capsule is synthesized only on
   [capsule_shard], and SPort links whose streamer lives elsewhere are
   wired through [remote_send] (the coordinator's ring push) instead of
   a local channel. The placement must be closed under flows — a flow
   with endpoints on two shards is rejected. *)
type partition = {
  shard_of : string -> int;
  me : int;
  capsule_shard : int;
  remote_send : role:string -> sport:string -> Statechart.Event.t -> unit;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Elab_error s)) fmt

let method_of = function
  | None -> Ode.Integrator.Fixed (Ode.Fixed.Rk4, 1e-3)
  | Some (Ast.Mfixed (scheme, step)) ->
    (match Ode.Fixed.scheme_of_string scheme with
     | Some s -> Ode.Integrator.Fixed (s, step)
     | None -> fail "unknown integration scheme %S" scheme)
  | Some Ast.Madaptive ->
    Ode.Integrator.Adaptive (Ode.Adaptive.Dormand_prince, Ode.Adaptive.default_control)
  | Some (Ast.Mimplicit step) -> Ode.Integrator.Implicit (`Backward_euler, step)

let guard_direction = function
  | Ast.Grising -> Ode.Events.Rising
  | Ast.Gfalling -> Ode.Events.Falling
  | Ast.Gboth -> Ode.Events.Both

(* Variable scope inside solver expressions: t, state variables (by
   position in y), parameters, input DPorts — in that priority order. *)
let solver_scope (s : Ast.streamer_decl) (env : Hybrid.Solver.env) time y =
  let state_index name =
    let rec find i = function
      | [] -> None
      | (v, _) :: _ when String.equal v name -> Some i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 s.Ast.s_states
  in
  let in_port name =
    List.exists
      (fun (d : Ast.dport_decl) ->
         d.Ast.dp_dir = Some Ast.Din && String.equal d.Ast.dp_name name)
      s.Ast.s_dports
  in
  { Expr.var =
      (fun name ->
         if String.equal name "t" then Some time
         else
           match state_index name with
           | Some i -> Some y.(i)
           | None ->
             if List.mem_assoc name s.Ast.s_params then
               Some (env.Hybrid.Solver.param name)
             else if in_port name then Some (env.Hybrid.Solver.input name)
             else None);
    payload = None }

let rec streamer_of_decl checked (s : Ast.streamer_decl) =
  if s.Ast.s_contains <> [] then composite_of_decl checked s
  else leaf_of_decl checked s

and composite_of_decl checked (s : Ast.streamer_decl) =
  let model = checked.Typecheck.model in
  let children =
    List.map
      (fun (child, cls) ->
         match
           List.find_opt
             (fun (x : Ast.streamer_decl) -> String.equal x.Ast.s_name cls)
             model.Ast.m_streamers
         with
         | Some decl -> (child, streamer_of_decl checked decl)
         | None -> fail "streamer %S: unknown child class %S" s.Ast.s_name cls)
      s.Ast.s_contains
  in
  let flows =
    List.map
      (fun ((src : Ast.internal_endpoint), (dst : Ast.internal_endpoint)) ->
         let conv (ep : Ast.internal_endpoint) =
           match ep.Ast.ie_child with
           | None -> Hybrid.Streamer.border ep.Ast.ie_port
           | Some c -> Hybrid.Streamer.child_port c ep.Ast.ie_port
         in
         (conv src, conv dst))
      s.Ast.s_flows
  in
  let dports =
    List.map
      (fun (d : Ast.dport_decl) ->
         let dtype = Typecheck.flow_type_of checked d.Ast.dp_type in
         match d.Ast.dp_dir with
         | Some Ast.Din -> Hybrid.Streamer.dport_in ~dtype d.Ast.dp_name
         | Some Ast.Dout -> Hybrid.Streamer.dport_out ~dtype d.Ast.dp_name
         | None -> fail "streamer %S: relay DPort %S" s.Ast.s_name d.Ast.dp_name)
      s.Ast.s_dports
  in
  Hybrid.Streamer.composite s.Ast.s_name ?rate:s.Ast.s_rate ~dports ~children
    ~flows

and leaf_of_decl checked (s : Ast.streamer_decl) =
  let dim = List.length s.Ast.s_states in
  let init = Array.of_list (List.map snd s.Ast.s_states) in
  let rhs env time y =
    let scope = solver_scope s env time y in
    Array.of_list
      (List.map
         (fun (v, _) ->
            match List.assoc_opt v s.Ast.s_eqs with
            | Some e -> Expr.eval scope e
            | None -> 0.)
         s.Ast.s_states)
  in
  let outputs =
    Hybrid.Streamer.output_fn (fun env time y ->
        let scope = solver_scope s env time y in
        List.map
          (fun (port, e) -> (port, Dataflow.Value.Float (Expr.eval scope e)))
          s.Ast.s_outputs)
  in
  let dports =
    List.map
      (fun (d : Ast.dport_decl) ->
         let dtype = Typecheck.flow_type_of checked d.Ast.dp_type in
         match d.Ast.dp_dir with
         | Some Ast.Din -> Hybrid.Streamer.dport_in ~dtype d.Ast.dp_name
         | Some Ast.Dout -> Hybrid.Streamer.dport_out ~dtype d.Ast.dp_name
         | None -> fail "streamer %S: relay DPort %S" s.Ast.s_name d.Ast.dp_name)
      s.Ast.s_dports
  in
  let sports =
    List.map
      (fun (sp : Ast.sport_decl) ->
         match Typecheck.protocol_of checked sp.Ast.sp_proto with
         | Some proto ->
           Hybrid.Streamer.sport ~conjugated:sp.Ast.sp_conjugated sp.Ast.sp_name proto
         | None -> fail "streamer %S: unresolved protocol %S" s.Ast.s_name sp.Ast.sp_proto)
      s.Ast.s_sports
  in
  let guards =
    List.map
      (fun (g : Ast.guard_decl) ->
         { Hybrid.Streamer.guard_id = g.Ast.g_name;
           signal = g.Ast.g_signal;
           via_sport = g.Ast.g_sport;
           direction = guard_direction g.Ast.g_dir;
           expr =
             (fun env time y -> Expr.eval (solver_scope s env time y) g.Ast.g_expr);
           payload =
             Option.map
               (fun pe env time y ->
                  Dataflow.Value.Float (Expr.eval (solver_scope s env time y) pe))
               g.Ast.g_payload })
      s.Ast.s_guards
  in
  let strategy = Hybrid.Strategy.create () in
  List.iter
    (fun (st : Ast.strategy_decl) ->
       Hybrid.Strategy.on strategy ~signal:st.Ast.st_signal
         (fun control event ->
            let y = control.Hybrid.Strategy.get_state () in
            let scope =
              { Expr.var =
                  (fun name ->
                     if String.equal name "t" then
                       Some (control.Hybrid.Strategy.now ())
                     else
                       let rec find i = function
                         | [] -> None
                         | (v, _) :: _ when String.equal v name -> Some y.(i)
                         | _ :: rest -> find (i + 1) rest
                       in
                       match find 0 s.Ast.s_states with
                       | Some v -> Some v
                       | None ->
                         if List.mem_assoc name s.Ast.s_params then
                           Some (control.Hybrid.Strategy.get_param name)
                         else None);
                payload = Statechart.Event.float_payload event }
            in
            control.Hybrid.Strategy.set_param st.Ast.st_param
              (Expr.eval scope st.Ast.st_expr)))
    s.Ast.s_strategies;
  let rate =
    match s.Ast.s_rate with
    | Some r -> r
    | None -> fail "streamer %S: missing rate" s.Ast.s_name
  in
  Hybrid.Streamer.leaf s.Ast.s_name ~rate ~method_:(method_of s.Ast.s_method)
    ~dim ~init ~params:s.Ast.s_params ~dports ~sports ~guards ~strategy
    ~outputs ~rhs

let capsule_class_of checked (c : Ast.capsule_decl) =
  let ports =
    List.map
      (fun (name, proto, conjugated, relay) ->
         match Typecheck.protocol_of checked proto with
         | Some p ->
           Umlrt.Capsule.port ~conjugated
             ~kind:(if relay then Umlrt.Capsule.Relay else Umlrt.Capsule.End)
             name p
         | None -> fail "capsule %S: unresolved protocol %S" c.Ast.c_name proto)
      c.Ast.c_ports
  in
  let behavior =
    if c.Ast.c_states = [] then None
    else
      Some
        (fun (services : Umlrt.Capsule.services) ->
           let m = Statechart.Machine.create c.Ast.c_name in
           let rec add_states ?parent (st : Ast.state_decl) =
             Statechart.Machine.add_state m ?parent st.Ast.st_name;
             List.iter (add_states ~parent:st.Ast.st_name) st.Ast.st_children;
             (match st.Ast.st_initial with
              | Some i -> Statechart.Machine.set_initial m ~of_:st.Ast.st_name i
              | None -> ())
           in
           List.iter (fun st -> add_states st) c.Ast.c_states;
           (match c.Ast.c_initial with
            | Some i -> Statechart.Machine.set_initial m i
            | None -> ());
           let rec add_transitions (st : Ast.state_decl) =
             List.iter
               (fun (tr : Ast.transition_decl) ->
                  let action =
                    match tr.Ast.tr_send with
                    | None -> None
                    | Some (signal, port) ->
                      Some
                        (fun _ctx _event ->
                           services.Umlrt.Capsule.send ~port
                             (Statechart.Event.make signal))
                  in
                  Statechart.Machine.add_transition m ~src:st.Ast.st_name
                    ~dst:tr.Ast.tr_target ~trigger:tr.Ast.tr_trigger ?action ())
               st.Ast.st_transitions;
             List.iter add_transitions st.Ast.st_children
           in
           List.iter add_transitions c.Ast.c_states;
           let instance = ref None in
           { Umlrt.Capsule.on_start =
               (fun () ->
                  instance := Some (Statechart.Instance.start m ());
                  List.iter
                    (fun (signal, period) ->
                       services.Umlrt.Capsule.timer_every period
                         (Statechart.Event.make signal))
                    c.Ast.c_timers);
             on_event =
               (fun ~port:_ event ->
                  match !instance with
                  | Some i -> Statechart.Instance.handle i event
                  | None -> false);
             configuration =
               (fun () ->
                  match !instance with
                  | Some i -> Statechart.Instance.configuration i
                  | None -> []) })
  in
  Umlrt.Capsule.create ?behavior ~ports c.Ast.c_name

let elaborate ?signal_latency ?partition checked =
  if not (Typecheck.is_ok checked) then
    fail "model has errors:\n%s" (String.concat "\n" checked.Typecheck.errors);
  let model = checked.Typecheck.model in
  let sys =
    match model.Ast.m_system with
    | Some s -> s
    | None -> fail "model %S has no system block" model.Ast.m_name
  in
  let mine name =
    match partition with
    | None -> true
    | Some p -> p.shard_of name = p.me
  in
  let hosts_capsules =
    match partition with
    | None -> true
    | Some p -> p.me = p.capsule_shard
  in
  let all_capsule_instances =
    List.filter_map
      (function
        | Ast.Icapsule { iname; iclass; _ } ->
          let decl =
            List.find_opt
              (fun (c : Ast.capsule_decl) -> String.equal c.Ast.c_name iclass)
              model.Ast.m_capsules
          in
          (match decl with
           | Some d -> Some (iname, d)
           | None -> fail "unknown capsule class %S" iclass)
        | Ast.Istreamer _ | Ast.Irelay _ -> None)
      sys.Ast.sys_instances
  in
  let capsule_instances = if hosts_capsules then all_capsule_instances else [] in
  let streamer_instances =
    List.filter_map
      (function
        | Ast.Istreamer { iname; iclass; _ } ->
          let decl =
            List.find_opt
              (fun (s : Ast.streamer_decl) -> String.equal s.Ast.s_name iclass)
              model.Ast.m_streamers
          in
          (match decl with
           | Some d -> if mine iname then Some (iname, d) else None
           | None -> fail "unknown streamer class %S" iclass)
        | Ast.Icapsule _ | Ast.Irelay _ -> None)
      sys.Ast.sys_instances
  in
  let relay_instances =
    List.filter_map
      (function
        | Ast.Irelay { iname; itype; ifanout; _ } when mine iname ->
          Some (iname, Typecheck.flow_type_of checked itype, ifanout)
        | Ast.Irelay _ -> None
        | Ast.Icapsule _ | Ast.Istreamer _ -> None)
      sys.Ast.sys_instances
  in
  let links =
    List.filter_map
      (function
        | Ast.Clink { cl_streamer; cl_capsule; _ } -> Some (cl_streamer, cl_capsule)
        | Ast.Cflow _ -> None)
      sys.Ast.sys_connections
  in
  (* Root capsule: capsule instances as parts, one border relay port per
     SPort link. *)
  let border_name si sp = Printf.sprintf "l_%s_%s" si sp in
  let root =
    (* worker shards host streamers only; the root capsule (with every
       border port) exists solely on the capsule shard *)
    if not hosts_capsules || (capsule_instances = [] && links = []) then None
    else begin
      let borders =
        List.map
          (fun ((si, sp), (ci, cp)) ->
             let cdecl =
               match List.assoc_opt ci all_capsule_instances with
               | Some d -> d
               | None -> fail "link: unknown capsule instance %S" ci
             in
             let _, proto_name, conjugated, _ =
               match
                 List.find_opt (fun (n, _, _, _) -> String.equal n cp)
                   cdecl.Ast.c_ports
               with
               | Some p -> p
               | None -> fail "link: capsule %S has no port %S" ci cp
             in
             let proto =
               match Typecheck.protocol_of checked proto_name with
               | Some p -> p
               | None -> fail "link: unresolved protocol %S" proto_name
             in
             Umlrt.Capsule.port ~conjugated ~kind:Umlrt.Capsule.Relay
               (border_name si sp) proto)
          links
      in
      let connectors =
        List.map
          (fun ((si, sp), (ci, cp)) ->
             Umlrt.Capsule.connector
               ~from_:(Umlrt.Capsule.border (border_name si sp))
               ~to_:(Umlrt.Capsule.part_port ci cp))
          links
      in
      let parts =
        List.map (fun (iname, decl) -> (iname, capsule_class_of checked decl))
          capsule_instances
      in
      Some (Umlrt.Capsule.create ~ports:borders ~parts ~connectors "system")
    end
  in
  let engine = Hybrid.Engine.create ?signal_latency ?root () in
  List.iter
    (fun (iname, decl) ->
       Hybrid.Engine.add_streamer engine ~role:iname (streamer_of_decl checked decl))
    streamer_instances;
  List.iter
    (fun (iname, dtype, fanout) ->
       Hybrid.Engine.add_relay engine ~name:iname dtype ~fanout)
    relay_instances;
  (* Capsule relay DPorts become junctions named "<inst>.<dport>". *)
  List.iter
    (fun (iname, (decl : Ast.capsule_decl)) ->
       List.iter
         (fun (d : Ast.dport_decl) ->
            Hybrid.Engine.add_junction engine
              ~name:(Printf.sprintf "%s.%s" iname d.Ast.dp_name)
              (Typecheck.flow_type_of checked d.Ast.dp_type))
         decl.Ast.c_dports)
    capsule_instances;
  let resolve_flow_endpoint (inst, port) ~as_source =
    if List.mem_assoc inst capsule_instances then
      (Printf.sprintf "%s.%s" inst port, (if as_source then "out1" else "in"))
    else (inst, port)
  in
  List.iter
    (function
      | Ast.Cflow { cf_src; cf_dst; _ } ->
        let src_mine = mine (fst cf_src) and dst_mine = mine (fst cf_dst) in
        if src_mine <> dst_mine then
          fail
            "flow %s.%s -> %s.%s crosses shards: flows must stay inside one co-location group"
            (fst cf_src) (snd cf_src) (fst cf_dst) (snd cf_dst);
        if src_mine then begin
          let src = resolve_flow_endpoint cf_src ~as_source:true in
          let dst = resolve_flow_endpoint cf_dst ~as_source:false in
          match Hybrid.Engine.connect_flow engine ~src ~dst with
          | Ok () -> ()
          | Error e -> fail "flow: %s" e
        end
      | Ast.Clink _ -> ())
    sys.Ast.sys_connections;
  if hosts_capsules then
    List.iter
      (fun ((si, sp), _) ->
         if mine si then
           match
             Hybrid.Engine.link_sport engine ~role:si ~sport:sp
               ~border_port:(border_name si sp)
           with
           | Ok () -> ()
           | Error e -> fail "link: %s" e
         else
           match partition with
           | Some p ->
             Hybrid.Engine.link_sport_remote engine ~role:si ~sport:sp
               ~border_port:(border_name si sp)
               ~send:(p.remote_send ~role:si ~sport:sp)
           | None -> assert false)
      links;
  { engine;
    capsule_paths =
      List.map (fun (iname, _) -> (iname, "system/" ^ iname)) capsule_instances;
    streamer_roles = List.map fst streamer_instances }
