(** Static semantics of .umh models: name resolution plus the paper's
    well-formedness rules (R2 flow-type subsets, R4 SPort/protocol
    compatibility, R5 relay-only capsule DPorts, R6 capsules-contain-
    streamers-only, R7 positive thread rates). *)

type message = { at : Ast.pos; text : string }
(** A positioned finding — the structured form consumed by [Lint]. *)

type checked = {
  model : Ast.model;
  flowtypes : (string * Dataflow.Flow_type.t) list;
  protocols : (string * Umlrt.Protocol.t) list;
  error_messages : message list;
  warning_messages : message list;
  errors : string list;    (** [error_messages] rendered ["line:col: text"] *)
  warnings : string list;  (** [warning_messages] rendered likewise *)
}

val render_message : message -> string

val check : Ast.model -> checked

val is_ok : checked -> bool
(** No errors (warnings allowed). *)

val flow_type_of : checked -> string option -> Dataflow.Flow_type.t
(** Resolve an optional flow-type name ([None] = scalar float). Falls
    back to scalar float for unresolved names (an error was already
    recorded). *)

val protocol_of : checked -> string -> Umlrt.Protocol.t option
