(** Elaboration: a checked .umh model becomes a live {!Hybrid.Engine}.

    - streamer declarations become {!Hybrid.Streamer.leaf} values whose
      solver evaluates the model's equations with {!Expr.eval};
    - capsule declarations become {!Umlrt.Capsule} classes whose
      behaviour is the declared statechart (send actions wired to ports);
    - the system block becomes a synthesized root capsule containing the
      capsule instances, with one border relay port per SPort link;
    - flows, relays and capsule relay-DPorts (as junctions) build the
      dataflow graph. *)

exception Elab_error of string

type elaborated = {
  engine : Hybrid.Engine.t;
  capsule_paths : (string * string) list;
    (** capsule instance name -> runtime path *)
  streamer_roles : string list;
}

type partition = {
  shard_of : string -> int;
    (** placement of every system instance (streamer, relay, capsule) *)
  me : int;        (** the shard this elaboration builds *)
  capsule_shard : int;  (** where the synthesized root capsule lives *)
  remote_send : role:string -> sport:string -> Statechart.Event.t -> unit;
    (** transport for capsule->streamer links whose streamer is remote *)
}
(** One shard's view of the system for the sharded runtime: only the
    instances placed on [me] are built; the root capsule (and all SPort
    border ports) exist only on [capsule_shard], where links to remote
    streamers are wired through [remote_send] instead of a local
    channel. The placement must be closed under flows. *)

val elaborate :
  ?signal_latency:Rt.Channel.latency_model -> ?partition:partition ->
  Typecheck.checked -> elaborated
(** Raises {!Elab_error} when the model has type errors or when an
    engine-level operation rejects a construct. Without [?partition]
    the whole system is built into one engine. *)

val streamer_of_decl :
  Typecheck.checked -> Ast.streamer_decl -> Hybrid.Streamer.t
(** Build one streamer definition (exposed for tests and codegen). *)
