(** Abstract syntax of the .umh modeling language. Produced by
    {!Parser}, consumed by {!Typecheck} and {!Elaborate}. Positions are
    (line, column) of the construct's first token. *)

type pos = { line : int; col : int }

type base_type = TFloat | TInt | TBool | TVec of int

type flowtype_decl = {
  ft_name : string;
  ft_fields : (string * base_type) list;
  ft_pos : pos;
}

type signal_decl = {
  sig_name : string;
  sig_payload : string option;  (** flow type name, or None *)
}

type protocol_decl = {
  proto_name : string;
  proto_in : signal_decl list;
  proto_out : signal_decl list;
  proto_pos : pos;
}

type direction = Din | Dout

type dport_decl = {
  dp_name : string;
  dp_dir : direction option;  (** None = declared [relay] (capsule side) *)
  dp_type : string option;    (** flow type name; None = scalar float *)
  dp_pos : pos;
}

type sport_decl = {
  sp_name : string;
  sp_proto : string;
  sp_conjugated : bool;
  sp_pos : pos;
}

type guard_dir = Grising | Gfalling | Gboth

type guard_decl = {
  g_name : string;
  g_dir : guard_dir;
  g_expr : Expr.t;
  g_signal : string;
  g_payload : Expr.t option;  (** payload expression evaluated at the crossing *)
  g_sport : string;
  g_pos : pos;
}

type method_decl =
  | Mfixed of string * float   (** scheme name, step *)
  | Madaptive
  | Mimplicit of float

type strategy_decl = {
  st_signal : string;
  st_param : string;
  st_expr : Expr.t;   (** may use [payload] *)
  st_pos : pos;
}

type internal_endpoint = {
  ie_child : string option;  (** [None] = this streamer's border DPort ("self") *)
  ie_port : string;
}

type streamer_decl = {
  s_name : string;
  s_rate : float option;
  s_wcet : float option;  (** declared per-tick execution budget, seconds *)
  s_method : method_decl option;
  s_dports : dport_decl list;
  s_sports : sport_decl list;
  s_params : (string * float) list;
  s_states : (string * float) list;   (** state variables with initial values *)
  s_eqs : (string * Expr.t) list;     (** x' = e, keyed by state variable *)
  s_outputs : (string * Expr.t) list; (** output DPort = expression *)
  s_guards : guard_decl list;
  s_strategies : strategy_decl list;
  s_contains : (string * string) list;  (** sub-streamers: child role, class *)
  s_flows : (internal_endpoint * internal_endpoint) list;
  s_pos : pos;
}

type transition_decl = {
  tr_trigger : string;
  tr_target : string;
  tr_send : (string * string) option;  (** signal, via port *)
  tr_pos : pos;
}

type state_decl = {
  st_name : string;
  st_initial : string option;          (** initial child *)
  st_children : state_decl list;
  st_transitions : transition_decl list;
  st_pos : pos;
}

type capsule_decl = {
  c_name : string;
  c_ports : (string * string * bool * bool) list;
    (** name, protocol, conjugated, relay *)
  c_dports : dport_decl list;          (** capsule DPorts: must be relay *)
  c_timers : (string * float) list;
    (** self-delivered periodic signals: signal name, period *)
  c_initial : string option;
  c_states : state_decl list;
  c_pos : pos;
}

type instance_decl =
  | Icapsule of { iname : string; iclass : string; ipos : pos }
  | Istreamer of { iname : string; iclass : string; icontainer : string option; ipos : pos }
  | Irelay of { iname : string; itype : string option; ifanout : int; ipos : pos }

type connection_decl =
  | Cflow of { cf_src : string * string; cf_dst : string * string; cf_pos : pos }
  | Clink of { cl_streamer : string * string; cl_capsule : string * string; cl_pos : pos }

type system_decl = {
  sys_instances : instance_decl list;
  sys_connections : connection_decl list;
  sys_pos : pos;
}

type model = {
  m_name : string;
  m_flowtypes : flowtype_decl list;
  m_protocols : protocol_decl list;
  m_streamers : streamer_decl list;
  m_capsules : capsule_decl list;
  m_system : system_decl option;
}
