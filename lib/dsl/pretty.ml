let base_name = function
  | Ast.TFloat -> "float"
  | Ast.TInt -> "int"
  | Ast.TBool -> "bool"
  | Ast.TVec n -> Printf.sprintf "vec %d" n

let pp_flowtype ppf (d : Ast.flowtype_decl) =
  Format.fprintf ppf "flowtype %s {@;<1 2>@[<v>" d.Ast.ft_name;
  List.iter
    (fun (n, b) -> Format.fprintf ppf "%s: %s;@ " n (base_name b))
    d.Ast.ft_fields;
  Format.fprintf ppf "@]@,}@,"

let pp_signal ppf (s : Ast.signal_decl) =
  match s.Ast.sig_payload with
  | None -> Format.pp_print_string ppf s.Ast.sig_name
  | Some ty -> Format.fprintf ppf "%s(%s)" s.Ast.sig_name ty

let pp_protocol ppf (p : Ast.protocol_decl) =
  Format.fprintf ppf "protocol %s {@;<1 2>@[<v>" p.Ast.proto_name;
  let side kw = function
    | [] -> ()
    | signals ->
      Format.fprintf ppf "%s %a;@ " kw
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_signal)
        signals
  in
  side "in" p.Ast.proto_in;
  side "out" p.Ast.proto_out;
  Format.fprintf ppf "@]@,}@,"

let dport_dir = function
  | Some Ast.Din -> "in"
  | Some Ast.Dout -> "out"
  | None -> "relay"

let pp_dport ppf (d : Ast.dport_decl) =
  match d.Ast.dp_type with
  | None -> Format.fprintf ppf "dport %s %s;@ " (dport_dir d.Ast.dp_dir) d.Ast.dp_name
  | Some ty ->
    Format.fprintf ppf "dport %s %s : %s;@ " (dport_dir d.Ast.dp_dir) d.Ast.dp_name ty

let guard_dir = function
  | Ast.Grising -> "rising"
  | Ast.Gfalling -> "falling"
  | Ast.Gboth -> "both"

let pp_method ppf = function
  | Ast.Mfixed (scheme, step) -> Format.fprintf ppf "method %s %g;@ " scheme step
  | Ast.Madaptive -> Format.fprintf ppf "method adaptive;@ "
  | Ast.Mimplicit step -> Format.fprintf ppf "method implicit %g;@ " step

let pp_streamer ppf (s : Ast.streamer_decl) =
  Format.fprintf ppf "streamer %s {@;<1 2>@[<v>" s.Ast.s_name;
  (match s.Ast.s_rate with
   | Some r -> Format.fprintf ppf "rate %g;@ " r
   | None -> ());
  (match s.Ast.s_wcet with
   | Some w -> Format.fprintf ppf "wcet %g;@ " w
   | None -> ());
  (match s.Ast.s_method with
   | Some m -> pp_method ppf m
   | None -> ());
  List.iter (pp_dport ppf) s.Ast.s_dports;
  List.iter
    (fun (sp : Ast.sport_decl) ->
       Format.fprintf ppf "sport %s : %s%s;@ " sp.Ast.sp_name sp.Ast.sp_proto
         (if sp.Ast.sp_conjugated then " conjugated" else ""))
    s.Ast.s_sports;
  List.iter
    (fun (n, v) -> Format.fprintf ppf "param %s = %g;@ " n v)
    s.Ast.s_params;
  List.iter
    (fun (n, v) -> Format.fprintf ppf "init %s = %g;@ " n v)
    s.Ast.s_states;
  List.iter
    (fun (n, e) -> Format.fprintf ppf "eq %s' = %a;@ " n Expr.pp e)
    s.Ast.s_eqs;
  List.iter
    (fun (n, e) -> Format.fprintf ppf "output %s = %a;@ " n Expr.pp e)
    s.Ast.s_outputs;
  List.iter
    (fun (g : Ast.guard_decl) ->
       match g.Ast.g_payload with
       | None ->
         Format.fprintf ppf "guard %s : %s %a emits %s via %s;@ " g.Ast.g_name
           (guard_dir g.Ast.g_dir) Expr.pp g.Ast.g_expr g.Ast.g_signal g.Ast.g_sport
       | Some pe ->
         Format.fprintf ppf "guard %s : %s %a emits %s(%a) via %s;@ " g.Ast.g_name
           (guard_dir g.Ast.g_dir) Expr.pp g.Ast.g_expr g.Ast.g_signal Expr.pp pe
           g.Ast.g_sport)
    s.Ast.s_guards;
  List.iter
    (fun (st : Ast.strategy_decl) ->
       Format.fprintf ppf "when %s set %s = %a;@ " st.Ast.st_signal st.Ast.st_param
         Expr.pp st.Ast.st_expr)
    s.Ast.s_strategies;
  List.iter
    (fun (child, cls) -> Format.fprintf ppf "contains %s : %s;@ " child cls)
    s.Ast.s_contains;
  let ep ppf (e : Ast.internal_endpoint) =
    match e.Ast.ie_child with
    | None -> Format.fprintf ppf "self.%s" e.Ast.ie_port
    | Some c -> Format.fprintf ppf "%s.%s" c e.Ast.ie_port
  in
  List.iter
    (fun (src, dst) -> Format.fprintf ppf "flow %a -> %a;@ " ep src ep dst)
    s.Ast.s_flows;
  Format.fprintf ppf "@]@,}@,"

let rec pp_state ppf (st : Ast.state_decl) =
  Format.fprintf ppf "state %s {@;<1 2>@[<v>" st.Ast.st_name;
  (match st.Ast.st_initial with
   | Some i -> Format.fprintf ppf "initial %s;@ " i
   | None -> ());
  List.iter (pp_state ppf) st.Ast.st_children;
  List.iter
    (fun (tr : Ast.transition_decl) ->
       match tr.Ast.tr_send with
       | None ->
         Format.fprintf ppf "on %s -> %s;@ " tr.Ast.tr_trigger tr.Ast.tr_target
       | Some (signal, port) ->
         Format.fprintf ppf "on %s -> %s send %s via %s;@ " tr.Ast.tr_trigger
           tr.Ast.tr_target signal port)
    st.Ast.st_transitions;
  Format.fprintf ppf "@]@,}@,"

let pp_capsule ppf (c : Ast.capsule_decl) =
  Format.fprintf ppf "capsule %s {@;<1 2>@[<v>" c.Ast.c_name;
  List.iter
    (fun (name, proto, conjugated, relay) ->
       Format.fprintf ppf "port %s : %s%s%s;@ " name proto
         (if conjugated then " conjugated" else "")
         (if relay then " relay" else ""))
    c.Ast.c_ports;
  List.iter (pp_dport ppf) c.Ast.c_dports;
  List.iter
    (fun (signal, period) -> Format.fprintf ppf "timer %s = %g;@ " signal period)
    c.Ast.c_timers;
  if c.Ast.c_states <> [] then begin
    Format.fprintf ppf "statemachine {@;<1 2>@[<v>";
    (match c.Ast.c_initial with
     | Some i -> Format.fprintf ppf "initial %s;@ " i
     | None -> ());
    List.iter (pp_state ppf) c.Ast.c_states;
    Format.fprintf ppf "@]@,}@,"
  end;
  Format.fprintf ppf "@]@,}@,"

let pp_system ppf (sys : Ast.system_decl) =
  Format.fprintf ppf "system {@;<1 2>@[<v>";
  List.iter
    (function
      | Ast.Icapsule { iname; iclass; _ } ->
        Format.fprintf ppf "capsule %s : %s;@ " iname iclass
      | Ast.Istreamer { iname; iclass; icontainer; _ } ->
        (match icontainer with
         | None -> Format.fprintf ppf "streamer %s : %s;@ " iname iclass
         | Some c -> Format.fprintf ppf "streamer %s : %s in %s;@ " iname iclass c)
      | Ast.Irelay { iname; itype; ifanout; _ } ->
        (match itype with
         | None -> Format.fprintf ppf "relay %s fanout %d;@ " iname ifanout
         | Some ty -> Format.fprintf ppf "relay %s : %s fanout %d;@ " iname ty ifanout))
    sys.Ast.sys_instances;
  List.iter
    (function
      | Ast.Cflow { cf_src = (a, b); cf_dst = (c, d); _ } ->
        Format.fprintf ppf "flow %s.%s -> %s.%s;@ " a b c d
      | Ast.Clink { cl_streamer = (a, b); cl_capsule = (c, d); _ } ->
        Format.fprintf ppf "link %s.%s -- %s.%s;@ " a b c d)
    sys.Ast.sys_connections;
  Format.fprintf ppf "@]@,}@,"

let pp_model ppf (m : Ast.model) =
  Format.fprintf ppf "@[<v>model %s@,@," m.Ast.m_name;
  List.iter (pp_flowtype ppf) m.Ast.m_flowtypes;
  List.iter (pp_protocol ppf) m.Ast.m_protocols;
  List.iter (pp_streamer ppf) m.Ast.m_streamers;
  List.iter (pp_capsule ppf) m.Ast.m_capsules;
  (match m.Ast.m_system with
   | Some sys -> pp_system ppf sys
   | None -> ());
  Format.fprintf ppf "@]"

let print_model m = Format.asprintf "%a" pp_model m
