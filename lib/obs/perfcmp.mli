(** Performance-record comparison — the analysis core of [umh perf].

    Reduces a performance record to a flat list of numeric indicators
    (higher always worse) and diffs two such lists with a relative
    tolerance. Two record shapes are understood, detected from content:

    - {e bench}: a BENCH_*.json-style object of sections; indicators are
      leaves whose names declare a cost ([*_ms], [*_ns],
      [us_per_streamer_sec], [*_over_*] overhead ratios, micro-bench
      entries), with E3-style point lists keyed by their [streamers]
      value so quick and full runs align on shared points.
    - {e telemetry}: an ["umh-telemetry"] JSONL stream; indicators are
      wall milliseconds per simulated second and per-sim-second counter
      rates over the whole stream.

    Indicators present in only one input never fail a diff — older
    BENCH files legitimately lack newer sections. *)

type kind = Bench | Telemetry

val kind_name : kind -> string

type summary = {
  s_kind : kind;
  s_label : string;
  s_meta : (string * Json.t) list;
  s_indicators : (string * float) list;
}

val summarize : label:string -> string -> summary
(** Parse file content (shape auto-detected). Raises [Failure] with a
    human-readable message on malformed input — a telemetry line with a
    wrong schema or a missing field is an error, never skipped. *)

type comparison = { c_key : string; c_a : float; c_b : float; c_ratio : float }

type diff_result = {
  compared : int;
  regressions : comparison list;   (** worst first *)
  improvements : comparison list;  (** best first *)
  only_a : string list;
  only_b : string list;
}

val default_tolerance : float
(** [0.5]: flag only changes beyond +50% — bench noise on shared
    machines is real, and the point is catching gross regressions
    mechanically, not adjudicating 5% drift. *)

val diff : ?tol:float -> summary -> summary -> diff_result
(** [diff ~tol a b]: for every indicator key present in both, the value
    is a regression when [b > a * (1 + tol)] and an improvement when
    [b < a / (1 + tol)]. Zero baselines admit no relative comparison and
    are skipped (both-zero counts as compared). *)

val pp_summary : Format.formatter -> summary -> unit

val pp_diff :
  Format.formatter -> tol:float -> summary -> summary -> diff_result -> unit
