(* Performance-record comparison: the analysis core of `umh perf`.

   Two input shapes are understood, detected from content rather than
   file extension: BENCH_*.json-style bench records (one JSON object of
   sections) and telemetry JSONL streams (one "umh-telemetry" record per
   line). Each is reduced to a flat, name-sorted list of numeric
   indicators where higher always means worse — wall-clock milliseconds,
   per-streamer costs, overhead ratios, per-sim-second rates — so a diff
   is a merge join plus a relative-tolerance check per shared key.
   Indicators present in only one input are reported but never fail the
   diff: older BENCH files legitimately lack newer sections. *)

type kind = Bench | Telemetry

let kind_name = function Bench -> "bench" | Telemetry -> "telemetry"

type summary = {
  s_kind : kind;
  s_label : string;
  s_meta : (string * Json.t) list;      (* informational, for summarize *)
  s_indicators : (string * float) list; (* sorted by key; higher is worse *)
}

(* {2 Bench records} *)

(* Only leaves whose name declares a cost are indicators; counts,
   horizons, schema versions and nested crash-report detail are workload
   descriptors, not performance. *)
let indicator_suffixes =
  [ "_ms"; "_ns"; "_over_baseline"; "_over_off"; "_over_raw";
    "us_per_streamer_sec" ]

let is_indicator_key key =
  let has_suffix s = String.ends_with ~suffix:s key in
  List.exists has_suffix indicator_suffixes
  || String.starts_with ~prefix:"micro." key

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let rec walk prefix j acc =
  match j with
  | Json.Obj fields ->
    List.fold_left
      (fun acc (k, v) ->
         let key = if prefix = "" then k else prefix ^ "." ^ k in
         walk key v acc)
      acc fields
  | Json.List items ->
    (* Point lists are keyed by their identifying field (streamers for
       E3 scaling curves) so quick and full runs align on shared
       points; anonymous lists fall back to positional keys. *)
    List.fold_left
      (fun (i, acc) item ->
         let label =
           match Json.member "streamers" item with
           | Some (Json.Int n) ->
             Printf.sprintf "%s[streamers=%d]" prefix n
           | _ -> Printf.sprintf "%s[%d]" prefix i
         in
         (i + 1, walk label item acc))
      (0, acc) items
    |> snd
  | Json.Int _ | Json.Float _ -> (
      match number j with
      | Some v when is_indicator_key prefix -> (prefix, v) :: acc
      | _ -> acc)
  | Json.Null | Json.Bool _ | Json.Str _ -> acc

let bench_meta j =
  match j with
  | Json.Obj fields ->
    [ ("sections", Json.List (List.map (fun (k, _) -> Json.Str k) fields)) ]
  | _ -> []

let summarize_bench ~label j =
  { s_kind = Bench;
    s_label = label;
    s_meta = bench_meta j;
    s_indicators =
      List.sort (fun (a, _) (b, _) -> String.compare a b) (walk "" j []) }

(* {2 Telemetry streams} *)

type telemetry_acc = {
  mutable t_records : int;
  mutable t_first_sim : float;
  mutable t_last_sim : float;
  mutable t_first_wall : int;
  mutable t_last_wall : int;
  mutable t_flight_recorded : int;
  mutable t_flight_dropped : int;
  t_counters : (string, int) Hashtbl.t;
  t_hists : (string, int * float) Hashtbl.t; (* total count, total sum *)
}

let fail fmt = Printf.ksprintf failwith fmt

let int_member name j =
  match Json.member name j with Some (Json.Int i) -> Some i | _ -> None

let float_member name j =
  match Json.member name j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let telemetry_line acc lineno line =
  let j =
    try Json.of_string line
    with Json.Parse_error msg ->
      fail "telemetry line %d: %s" lineno msg
  in
  (match Json.member "schema" j with
   | Some (Json.Str s) when s = Telemetry.schema -> ()
   | _ -> fail "telemetry line %d: missing schema %S" lineno Telemetry.schema);
  (match int_member "version" j with
   | Some v when v <= Telemetry.schema_version -> ()
   | Some v -> fail "telemetry line %d: unsupported version %d" lineno v
   | None -> fail "telemetry line %d: missing version" lineno);
  let sim =
    match float_member "sim_time" j with
    | Some s -> s
    | None -> fail "telemetry line %d: missing sim_time" lineno
  in
  let wall =
    match int_member "wall_ns" j with
    | Some w -> w
    | None -> fail "telemetry line %d: missing wall_ns" lineno
  in
  if acc.t_records = 0 then begin
    acc.t_first_sim <- sim;
    acc.t_first_wall <- wall
  end;
  acc.t_last_sim <- sim;
  acc.t_last_wall <- wall;
  acc.t_records <- acc.t_records + 1;
  (match Json.member "counters" j with
   | Some (Json.Obj fields) ->
     List.iter
       (fun (name, v) ->
          match v with
          | Json.Int d ->
            let cur = Option.value ~default:0 (Hashtbl.find_opt acc.t_counters name) in
            Hashtbl.replace acc.t_counters name (cur + d)
          | _ -> fail "telemetry line %d: counter %S is not an int" lineno name)
       fields
   | _ -> ());
  (match Json.member "histograms" j with
   | Some (Json.Obj fields) ->
     List.iter
       (fun (name, v) ->
          match (int_member "count" v, float_member "sum" v) with
          | Some dc, Some ds ->
            let c, s =
              Option.value ~default:(0, 0.) (Hashtbl.find_opt acc.t_hists name)
            in
            Hashtbl.replace acc.t_hists name (c + dc, s +. ds)
          | _ -> fail "telemetry line %d: malformed histogram %S" lineno name)
       fields
   | _ -> ());
  match Json.member "flightrec" j with
  | Some fr ->
    acc.t_flight_recorded <-
      acc.t_flight_recorded + Option.value ~default:0 (int_member "recorded" fr);
    acc.t_flight_dropped <-
      acc.t_flight_dropped + Option.value ~default:0 (int_member "dropped" fr)
  | None -> ()

let summarize_telemetry ~label content =
  let acc =
    { t_records = 0; t_first_sim = 0.; t_last_sim = 0.; t_first_wall = 0;
      t_last_wall = 0; t_flight_recorded = 0; t_flight_dropped = 0;
      t_counters = Hashtbl.create 16; t_hists = Hashtbl.create 16 }
  in
  let lineno = ref 0 in
  String.split_on_char '\n' content
  |> List.iter (fun line ->
      incr lineno;
      if String.trim line <> "" then telemetry_line acc !lineno line);
  if acc.t_records = 0 then fail "telemetry stream %s has no records" label;
  let sim_span = acc.t_last_sim -. acc.t_first_sim in
  let wall_span_ms = float_of_int (acc.t_last_wall - acc.t_first_wall) /. 1e6 in
  let sorted_counters =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) acc.t_counters [])
  in
  let indicators =
    if sim_span > 0. then
      ("wall_ms_per_sim_s", wall_span_ms /. sim_span)
      :: List.filter_map
        (fun (name, total) ->
           if total > 0 then
             Some ("rate." ^ name ^ "_per_sim_s", float_of_int total /. sim_span)
           else None)
        sorted_counters
    else []
  in
  let meta =
    [ ("records", Json.Int acc.t_records);
      ("sim_span_s", Json.Float sim_span);
      ("wall_span_ms", Json.Float wall_span_ms);
      ("flightrec_recorded", Json.Int acc.t_flight_recorded);
      ("flightrec_dropped", Json.Int acc.t_flight_dropped);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) sorted_counters) );
      ( "histograms",
        Json.Obj
          (List.sort compare
             (Hashtbl.fold
                (fun k (c, s) acc ->
                   ( k,
                     Json.Obj
                       [ ("count", Json.Int c); ("sum", Json.Float s);
                         ( "mean",
                           if c = 0 then Json.Null
                           else Json.Float (s /. float_of_int c) ) ] )
                   :: acc)
                acc.t_hists [])) ) ]
  in
  { s_kind = Telemetry;
    s_label = label;
    s_meta = meta;
    s_indicators =
      List.sort (fun (a, _) (b, _) -> String.compare a b) indicators }

(* {2 Detection and entry point} *)

let first_line content =
  match String.index_opt content '\n' with
  | Some i -> String.sub content 0 i
  | None -> content

let summarize ~label content =
  let head = String.trim (first_line content) in
  let is_telemetry =
    head <> ""
    &&
    match Json.of_string head with
    | j -> (
        match Json.member "schema" j with
        | Some (Json.Str s) -> s = Telemetry.schema
        | _ -> false)
    | exception Json.Parse_error _ -> false
  in
  if is_telemetry then summarize_telemetry ~label content
  else
    match Json.of_string content with
    | j -> summarize_bench ~label j
    | exception Json.Parse_error msg ->
      fail "%s: neither a telemetry stream nor a JSON bench record: %s" label
        msg

(* {2 Diff} *)

type comparison = { c_key : string; c_a : float; c_b : float; c_ratio : float }

type diff_result = {
  compared : int;
  regressions : comparison list;   (* worst first *)
  improvements : comparison list;  (* best first *)
  only_a : string list;
  only_b : string list;
}

let default_tolerance = 0.5

let diff ?(tol = default_tolerance) a b =
  if tol < 0. then invalid_arg "Obs.Perfcmp.diff: negative tolerance";
  let compared = ref 0 in
  let regs = ref [] and imps = ref [] in
  let only_a = ref [] and only_b = ref [] in
  let rec go xs ys =
    match (xs, ys) with
    | [], [] -> ()
    | (k, _) :: xt, [] ->
      only_a := k :: !only_a;
      go xt []
    | [], (k, _) :: yt ->
      only_b := k :: !only_b;
      go [] yt
    | (ka, va) :: xt, (kb, vb) :: yt ->
      let o = String.compare ka kb in
      if o < 0 then begin
        only_a := ka :: !only_a;
        go xt ys
      end
      else if o > 0 then begin
        only_b := kb :: !only_b;
        go xs yt
      end
      else begin
        (* Zero-valued baselines admit no relative comparison; both-zero
           is trivially fine, a fresh nonzero cost against a zero
           baseline is incomparable rather than an infinite regression. *)
        (if va > 0. then begin
            incr compared;
            let ratio = vb /. va in
            let cmp = { c_key = ka; c_a = va; c_b = vb; c_ratio = ratio } in
            if ratio > 1. +. tol then regs := cmp :: !regs
            else if ratio < 1. /. (1. +. tol) then imps := cmp :: !imps
          end
         else if va = 0. && vb = 0. then incr compared);
        go xt yt
      end
  in
  go a.s_indicators b.s_indicators;
  { compared = !compared;
    regressions =
      List.sort (fun x y -> compare y.c_ratio x.c_ratio) !regs;
    improvements =
      List.sort (fun x y -> compare x.c_ratio y.c_ratio) !imps;
    only_a = List.rev !only_a;
    only_b = List.rev !only_b }

(* {2 Rendering} *)

let pp_summary ppf s =
  Format.fprintf ppf "%s (%s)@." s.s_label (kind_name s.s_kind);
  List.iter
    (fun (k, v) -> Format.fprintf ppf "  %-20s %s@." k (Json.to_string v))
    s.s_meta;
  if s.s_indicators <> [] then begin
    Format.fprintf ppf "  indicators (higher is worse):@.";
    List.iter
      (fun (k, v) -> Format.fprintf ppf "    %-48s %12.4g@." k v)
      s.s_indicators
  end

let pp_comparison ppf c =
  Format.fprintf ppf "    %-48s %10.4g -> %10.4g  (%+.1f%%)@." c.c_key c.c_a
    c.c_b ((c.c_ratio -. 1.) *. 100.)

let pp_diff ppf ~tol a b r =
  Format.fprintf ppf "perf diff: %s -> %s (tolerance %+.0f%%)@." a.s_label
    b.s_label (tol *. 100.);
  Format.fprintf ppf "  %d indicators compared" r.compared;
  if r.only_a <> [] || r.only_b <> [] then
    Format.fprintf ppf " (%d only in old, %d only in new)"
      (List.length r.only_a) (List.length r.only_b);
  Format.fprintf ppf "@.";
  if r.regressions <> [] then begin
    Format.fprintf ppf "  REGRESSIONS:@.";
    List.iter (pp_comparison ppf) r.regressions
  end;
  if r.improvements <> [] then begin
    Format.fprintf ppf "  improvements:@.";
    List.iter (pp_comparison ppf) r.improvements
  end;
  if r.regressions = [] then Format.fprintf ppf "  no regressions@."
