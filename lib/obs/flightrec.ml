(* Always-on flight recorder: a small fixed ring of the most recent
   runtime steps (deliveries, ticks, flow writes), kept cheap enough to
   leave enabled in production runs. Unlike the opt-in tracer it stores
   no per-entry heap values: entries live in preallocated parallel
   arrays (ints plus one float array), labels are interned to small ints
   up front, and timestamps come from the coarse cached clock — so a
   [record] on the tick path allocates nothing. *)

(* Kind codes. Kept as plain ints (not a variant) so hot call sites pass
   a constant without construction; [kind_name] maps them back. *)
let k_dispatch = 1
let k_rtc = 2
let k_signal_send = 3
let k_signal_to_capsule = 4
let k_signal_to_streamer = 5
let k_tick = 6
let k_flow_write = 7
let k_flow_route = 8
let k_solver_advance = 9
let k_fault = 10
let k_restart = 11
let k_quarantine = 12
let k_watchdog = 13
let k_inject = 14
let k_crossing = 15

let kind_name = function
  | 1 -> "dispatch"
  | 2 -> "rtc"
  | 3 -> "signal_send"
  | 4 -> "signal_to_capsule"
  | 5 -> "signal_to_streamer"
  | 6 -> "tick"
  | 7 -> "flow_write"
  | 8 -> "flow_route"
  | 9 -> "solver_advance"
  | 10 -> "fault"
  | 11 -> "restart"
  | 12 -> "quarantine"
  | 13 -> "watchdog"
  | 14 -> "inject"
  | 15 -> "crossing"
  | _ -> "?"

(* Label interning: strings (roles, port names, signal names) map to
   small ints once, at setup or first use — never inside a steady-state
   loop (call sites cache the returned id). *)
let no_label = 0

let intern_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let labels = ref (Array.make 64 "")
let n_labels = ref 1 (* slot 0 = no label *)

(* The intern table is process-global (ids must agree across domains so
   entries survive domain hops); a mutex guards it. Interning is a
   setup-time path, never steady-state, so the lock is uncontended. *)
let intern_mu = Mutex.create ()

let intern s =
  Mutex.protect intern_mu @@ fun () ->
  match Hashtbl.find_opt intern_tbl s with
  | Some id -> id
  | None ->
      let id = !n_labels in
      if id > 0x1FFFFFF then no_label (* 25-bit packing limit; unreachable *)
      else begin
        if id >= Array.length !labels then begin
          let bigger = Array.make (2 * Array.length !labels) "" in
          Array.blit !labels 0 bigger 0 (Array.length !labels);
          labels := bigger
        end;
        !labels.(id) <- s;
        incr n_labels;
        Hashtbl.add intern_tbl s id;
        id
      end

let label id = if id > 0 && id < !n_labels then !labels.(id) else ""

let capacity = 4096

(* The int fields of an entry live interleaved in one flat array
   (array-of-structs) so a [record] touches adjacent cache lines instead
   of one line per field, and kind plus both interned labels are packed
   into a single word — the ring cycles through ~128 KB, so the stores
   are the cost and fewer, denser stores is the whole game. Layout of
   the packed word: bits 0-8 kind (incl. [value_bit]), 9-33 label a
   (who: role / capsule path / node), 34-58 label b (what: port /
   signal / detail). *)
let stride = 3
let f_pack = 0
let f_cause = 1
let f_wall = 2

let label_mask = 0x1FFFFFF (* 25 bits per interned label *)

let pack ~kind ~a ~b = kind lor (a lsl 9) lor (b lsl 34)
let pack_kind p = p land 0x1FF
let pack_a p = (p lsr 9) land label_mask
let pack_b p = (p lsr 34) land label_mask

type t = {
  ints : int array; (* capacity * stride *)
  sim : float array;
  value : float array; (* payload for [record_v]; live iff the kind slot
                          carries [value_bit] *)
  mutable next : int;
  mutable total : int;
}

let create () =
  {
    ints = Array.make (capacity * stride) 0;
    sim = Array.make capacity 0.;
    value = Array.make capacity Float.nan;
    next = 0;
    total = 0;
  }

let default = create ()

(* The ambient ring is domain-local: the main domain records into
   [default]; the sharded runtime gives each worker domain a private
   ring so hot-path stores never race. Crash reports and telemetry on
   the main domain read the ambient (= default) ring; the coordinator
   sums per-ring totals via [ring_total]/[ring_dropped]. *)
let ring_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> default)

let ambient () = Domain.DLS.get ring_key
let set_ambient r = Domain.DLS.set ring_key r

let ring_total t = t.total
let ring_dropped t = Int.max 0 (t.total - capacity)

let flag = ref true
let enabled () = !flag
let set_enabled on = flag := on

(* [record_v] tags the kind slot with this bit instead of the hot path
   writing a NaN sentinel into the value array on every record: whether
   a slot's payload is live is carried by the kind, so [record] never
   touches the float array and stale payloads from lapped [record_v]
   slots are never misattributed. *)
let value_bit = 0x100

(* Hot-path record: ints only plus a sim-time float that call sites read
   from an already-boxed field (so passing it does not box). Cause and
   wall clock are read from ambient state here, keeping call sites to a
   bare call. The unsafe stores are sound: [i] is [t.next], which is
   only ever assigned values in [0, capacity). *)
let record ~kind ~a ~b ~sim =
  if !flag then begin
    let t = Domain.DLS.get ring_key in
    let i = t.next in
    let base = i * stride in
    Array.unsafe_set t.ints (base + f_pack) (pack ~kind ~a ~b);
    Array.unsafe_set t.ints (base + f_cause) (Causal.current ());
    Array.unsafe_set t.ints (base + f_wall) (Clock.coarse_ns ());
    Array.unsafe_set t.sim i sim;
    t.next <- (if i + 1 = capacity then 0 else i + 1);
    t.total <- t.total + 1
  end

(* Cold-path variant carrying a float payload (fault values, watchdog
   budgets). Only used off the steady-state tick path. *)
let record_v ~kind ~a ~b ~sim v =
  if !flag then begin
    let t = Domain.DLS.get ring_key in
    let i = t.next in
    let base = i * stride in
    t.ints.(base + f_pack) <- pack ~kind:(kind lor value_bit) ~a ~b;
    t.ints.(base + f_cause) <- Causal.current ();
    t.ints.(base + f_wall) <- Clock.coarse_ns ();
    t.sim.(i) <- sim;
    t.value.(i) <- v;
    t.next <- (if i + 1 = capacity then 0 else i + 1);
    t.total <- t.total + 1
  end

type entry = {
  e_kind : int;
  e_cause : int;
  e_wall_ns : int;
  e_a : string;
  e_b : string;
  e_sim : float;
  e_value : float option;
}

let length () =
  let t = Domain.DLS.get ring_key in
  if t.total < capacity then t.total else capacity

let total () = (Domain.DLS.get ring_key).total

let dropped () = Int.max 0 ((Domain.DLS.get ring_key).total - capacity)

let clear () =
  let t = Domain.DLS.get ring_key in
  Array.fill t.ints 0 (capacity * stride) 0;
  Array.fill t.sim 0 capacity 0.;
  Array.fill t.value 0 capacity Float.nan;
  t.next <- 0;
  t.total <- 0

(* Oldest-first snapshot of the window. Allocates freely — only called
   when building a crash report or in tests. *)
let entries () =
  let t = Domain.DLS.get ring_key in
  let n = length () in
  let start = if t.total < capacity then 0 else t.next in
  List.init n (fun i ->
      let j = (start + i) mod capacity in
      let base = j * stride in
      let p = t.ints.(base + f_pack) in
      {
        e_kind = pack_kind p land (value_bit - 1);
        e_cause = t.ints.(base + f_cause);
        e_wall_ns = t.ints.(base + f_wall);
        e_a = label (pack_a p);
        e_b = label (pack_b p);
        e_sim = t.sim.(j);
        e_value =
          (if pack_kind p land value_bit = 0 then None else Some t.value.(j));
      })

let entry_json e =
  let base =
    [
      ("kind", Json.Str (kind_name e.e_kind));
      ("cause", Json.Int e.e_cause);
      ("wall_ns", Json.Int e.e_wall_ns);
      ("sim_time", Json.Float e.e_sim);
    ]
  in
  let base = if e.e_a = "" then base else base @ [ ("who", Json.Str e.e_a) ] in
  let base = if e.e_b = "" then base else base @ [ ("what", Json.Str e.e_b) ] in
  let base =
    match e.e_value with
    | None -> base
    | Some v -> base @ [ ("value", Json.Float v) ]
  in
  Json.Obj base

let to_json () =
  Json.Obj
    [
      ("capacity", Json.Int capacity);
      ("recorded", Json.Int (total ()));
      ("dropped", Json.Int (max 0 (total () - capacity)));
      ("entries", Json.List (List.map entry_json (entries ())));
    ]
