(* Per-entity cost attribution: every capsule, streamer and solver
   kernel registers a slot at elaboration time and the engine brackets
   its work with [enter]/[exit_]. Slot state lives in preallocated
   parallel arrays indexed by the slot int — the same packed/flat
   discipline as [Flightrec] — so the enabled path costs two clock
   reads, two [Gc.minor_words] reads and a handful of array stores, and
   the disabled path is a single load + branch with no closure.

   Self time is inclusive time minus child time: a frame stack (also
   flat arrays) accumulates each frame's child totals so a streamer tick
   that nests a solver advance attributes the integration cost to the
   kernel slot, not the streamer. Allocation attribution uses the same
   scheme over [Gc.minor_words] deltas. *)

(* {2 Entity kinds} — plain ints, mirroring Flightrec's kind codes. *)

let k_streamer = 1
let k_capsule = 2
let k_solver = 3
let k_other = 4

let kind_name = function
  | 1 -> "streamer"
  | 2 -> "capsule"
  | 3 -> "solver"
  | 4 -> "other"
  | _ -> "?"

(* {2 Slot store} — parallel growable arrays; [slot] indexes all of them. *)

type store = {
  mutable kinds : int array;
  mutable names : string array;
  mutable count : int array;        (* completed frames *)
  mutable self_ns : int array;      (* exclusive wall time *)
  mutable total_ns : int array;     (* inclusive wall time *)
  mutable alloc_w : float array;    (* exclusive minor words *)
  mutable max_ns : int array;       (* worst exclusive time of one frame *)
  mutable n : int;
}

let store =
  { kinds = Array.make 64 0;
    names = Array.make 64 "";
    count = Array.make 64 0;
    self_ns = Array.make 64 0;
    total_ns = Array.make 64 0;
    alloc_w = Array.make 64 0.;
    max_ns = Array.make 64 0;
    n = 0 }

(* (kind, name) -> slot, so re-elaborating the same model reuses slots
   instead of growing the store across bench repetitions. *)
let index : (int * string, int) Hashtbl.t = Hashtbl.create 64

let grow () =
  let cap = Array.length store.kinds in
  let cap' = cap * 2 in
  let copy mk arr =
    let a = mk cap' in
    Array.blit arr 0 a 0 cap; a
  in
  store.kinds <- copy (fun n -> Array.make n 0) store.kinds;
  store.names <- copy (fun n -> Array.make n "") store.names;
  store.count <- copy (fun n -> Array.make n 0) store.count;
  store.self_ns <- copy (fun n -> Array.make n 0) store.self_ns;
  store.total_ns <- copy (fun n -> Array.make n 0) store.total_ns;
  store.alloc_w <- copy (fun n -> Array.make n 0.) store.alloc_w;
  store.max_ns <- copy (fun n -> Array.make n 0) store.max_ns

let register ~kind name =
  match Hashtbl.find_opt index (kind, name) with
  | Some slot -> slot
  | None ->
    if store.n >= Array.length store.kinds then grow ();
    let slot = store.n in
    store.kinds.(slot) <- kind;
    store.names.(slot) <- name;
    store.n <- store.n + 1;
    Hashtbl.replace index (kind, name) slot;
    slot

let registered () = store.n

(* {2 Frame stack} — fixed depth; entity nesting in the engine is
   streamer→solver or capsule→(nothing), so 64 is generous. Frames past
   the limit are silently not measured rather than corrupting state. *)

let max_depth = 64
let stack_slot = Array.make max_depth 0
let stack_t0 = Array.make max_depth 0
let stack_w0 = Array.make max_depth 0.
let stack_child_ns = Array.make max_depth 0
let stack_child_w = Array.make max_depth 0.
let depth = ref 0

let on = ref false

let[@inline] enabled () = !on

let set_enabled flag =
  on := flag;
  depth := 0;
  (* Latency histograms need birth stamps on causal IDs. *)
  Causal.set_track_births flag

let enter slot =
  if !on && !depth < max_depth then begin
    let d = !depth in
    stack_slot.(d) <- slot;
    stack_child_ns.(d) <- 0;
    stack_child_w.(d) <- 0.;
    stack_w0.(d) <- Gc.minor_words ();
    stack_t0.(d) <- Clock.now_ns ();
    depth := d + 1
  end

let exit_ slot =
  if !on && !depth > 0 then begin
    let d = !depth - 1 in
    if stack_slot.(d) = slot then begin
      let elapsed = Clock.now_ns () - stack_t0.(d) in
      let dw = Gc.minor_words () -. stack_w0.(d) in
      store.count.(slot) <- store.count.(slot) + 1;
      store.total_ns.(slot) <- store.total_ns.(slot) + elapsed;
      let self = elapsed - stack_child_ns.(d) in
      store.self_ns.(slot) <- store.self_ns.(slot) + self;
      if self > store.max_ns.(slot) then store.max_ns.(slot) <- self;
      store.alloc_w.(slot) <- store.alloc_w.(slot) +. dw -. stack_child_w.(d);
      depth := d;
      if d > 0 then begin
        stack_child_ns.(d - 1) <- stack_child_ns.(d - 1) + elapsed;
        stack_child_w.(d - 1) <- stack_child_w.(d - 1) +. dw
      end
    end
    else
      (* Mismatched exit (an exception unwound past intermediate frames):
         drop the stack rather than attribute garbage. *)
      depth := 0
  end

(* {2 Stimulus→reaction latency} — the reaction point subtracts the
   cause's birth stamp from the coarse clock (refreshed at the start of
   the dispatch that delivered the reaction, so same granularity as the
   birth). Recorded only while enabled; zero when the cause predates
   tracking. Bounds reach down to 100ns — queue hops are fast. *)

let latency_bounds = Metrics.log_bounds ~lo:1e-7 ~hi:1e2 ~per_decade:3

let lat_capsule =
  Metrics.histogram ~bounds:latency_bounds "profile.latency.capsule_rtc_s"

let lat_streamer =
  Metrics.histogram ~bounds:latency_bounds "profile.latency.streamer_signal_s"

let note_latency hist =
  let birth = Causal.birth_ns (Causal.current ()) in
  if birth > 0 then begin
    let dt_ns = Clock.coarse_ns () - birth in
    if dt_ns >= 0 then
      Metrics.observe hist (float_of_int dt_ns /. 1e9)
  end

let note_capsule_reaction () = if !on then note_latency lat_capsule
let note_streamer_reaction () = if !on then note_latency lat_streamer

(* {2 Reporting} *)

type row = {
  r_kind : string;
  r_name : string;
  r_count : int;
  r_self_ns : int;
  r_total_ns : int;
  r_max_ns : int;
  r_alloc_w : float;
}

let rows () =
  let out = ref [] in
  for slot = store.n - 1 downto 0 do
    if store.count.(slot) > 0 then
      out :=
        { r_kind = kind_name store.kinds.(slot);
          r_name = store.names.(slot);
          r_count = store.count.(slot);
          r_self_ns = store.self_ns.(slot);
          r_total_ns = store.total_ns.(slot);
          r_max_ns = store.max_ns.(slot);
          r_alloc_w = store.alloc_w.(slot) }
        :: !out
  done;
  List.sort (fun a b -> compare b.r_self_ns a.r_self_ns) !out

let top n =
  let all = rows () in
  List.filteri (fun i _ -> i < n) all

let pp_top ppf n =
  let all = rows () in
  let shown = List.filteri (fun i _ -> i < n) all in
  let total_self =
    List.fold_left (fun acc r -> acc + r.r_self_ns) 0 all
  in
  Format.fprintf ppf "%-9s %-28s %10s %12s %8s %12s@." "kind" "entity"
    "calls" "self" "self%" "alloc_w";
  List.iter
    (fun r ->
       let pct =
         if total_self = 0 then 0.
         else 100. *. float_of_int r.r_self_ns /. float_of_int total_self
       in
       Format.fprintf ppf "%-9s %-28s %10d %9.3f ms %7.1f%% %12.0f@."
         r.r_kind r.r_name r.r_count
         (float_of_int r.r_self_ns /. 1e6)
         pct r.r_alloc_w)
    shown;
  let hidden = List.length all - List.length shown in
  if hidden > 0 then Format.fprintf ppf "  ... %d more entities@." hidden

let row_json r =
  Json.Obj
    [ ("kind", Json.Str r.r_kind);
      ("name", Json.Str r.r_name);
      ("count", Json.Int r.r_count);
      ("self_ns", Json.Int r.r_self_ns);
      ("total_ns", Json.Int r.r_total_ns);
      ("max_ns", Json.Int r.r_max_ns);
      ("alloc_words", Json.Float r.r_alloc_w) ]

let to_json ?top:(n = max_int) () =
  let all = rows () in
  let shown = List.filteri (fun i _ -> i < n) all in
  Json.Obj
    [ ("entities", Json.Int (List.length all));
      ("rows", Json.List (List.map row_json shown)) ]

let reset () =
  depth := 0;
  Array.fill store.count 0 store.n 0;
  Array.fill store.self_ns 0 store.n 0;
  Array.fill store.total_ns 0 store.n 0;
  Array.fill store.alloc_w 0 store.n 0.;
  Array.fill store.max_ns 0 store.n 0
