(** Post-mortem crash reports.

    When a fatal condition is detected — supervisor escalation, watchdog
    expiry, NaN divergence — the trigger site calls {!trigger} and a
    self-contained JSON report is written to the configured crash
    directory: the {!Flightrec} window, the offending causal chain
    reconstructed end to end with per-hop wall-clock latencies, a
    trigger-supplied state summary, and a {!Metrics} snapshot.

    Without {!set_dir}, {!trigger} is a load and a branch — the
    zero-cost contract holds when crash reporting is not requested. *)

val schema_version : int

val set_dir : string option -> unit
(** Configure (or clear) the directory reports are written into. The
    directory must already exist. *)

val get_dir : unit -> string option

val trigger :
  reason:string -> ?role:string -> ?context:(unit -> Json.t) -> unit ->
  string option
(** Write a crash report and return its path, or [None] when no crash
    directory is configured (or writing failed — a crash report must
    never mask the original fault). [reason] names the fatal condition
    ("supervisor_escalation", "watchdog_expired", "solver_divergence");
    [role] the offending capsule path or streamer role; [context] is
    evaluated lazily, only when a report is actually written, and its
    exceptions are swallowed. File names are sequential per process:
    [crash-001.json], [crash-002.json], ... *)

val last_report : unit -> string option
(** Path of the most recently written report, if any. *)

val reset : unit -> unit
(** Reset the sequence counter and last-report path — test isolation. *)
