let pid = 1

let phase_string = function
  | Tracer.Begin -> "B"
  | Tracer.End -> "E"
  | Tracer.Complete -> "X"
  | Tracer.Instant -> "i"
  | Tracer.Sample -> "C"

let arg_json = function
  | Tracer.Int i -> Json.Int i
  | Tracer.Float f -> Json.Float f
  | Tracer.Str s -> Json.Str s
  | Tracer.Bool b -> Json.Bool b

(* Track name -> tid, in order of first appearance; "" (the engine/main
   track) is always tid 0. *)
let track_ids events =
  let table = Hashtbl.create 16 in
  Hashtbl.replace table "" 0;
  let order = ref [ "" ] in
  List.iter
    (fun (ev : Tracer.event) ->
       if not (Hashtbl.mem table ev.Tracer.track) then begin
         Hashtbl.replace table ev.Tracer.track (Hashtbl.length table);
         order := ev.Tracer.track :: !order
       end)
    events;
  (table, List.rev !order)

let event_json tids (ev : Tracer.event) =
  let base =
    [ ("name", Json.Str ev.Tracer.name);
      ("cat", Json.Str ev.Tracer.cat);
      ("ph", Json.Str (phase_string ev.Tracer.phase));
      ("ts", Json.Float (Clock.ns_to_us ev.Tracer.ts_ns));
      ("pid", Json.Int pid);
      ("tid", Json.Int (try Hashtbl.find tids ev.Tracer.track with Not_found -> 0)) ]
  in
  let dur =
    match ev.Tracer.phase with
    | Tracer.Complete -> [ ("dur", Json.Float (Clock.ns_to_us ev.Tracer.dur_ns)) ]
    | _ -> []
  in
  let scope =
    match ev.Tracer.phase with
    | Tracer.Instant -> [ ("s", Json.Str "t") ]  (* thread-scoped tick *)
    | _ -> []
  in
  let args =
    ("t_sim", Json.Float ev.Tracer.sim_time)
    :: List.map (fun (k, v) -> (k, arg_json v)) ev.Tracer.args
  in
  Json.Obj (base @ dur @ scope @ [ ("args", Json.Obj args) ])

(* Causal chains as Chrome/Perfetto flow arrows: every event carrying a
   cause id gets a companion flow event with the cause as the flow [id] —
   "s" (start) at the chain's first appearance, "t" (step) afterwards.
   The flow event shares the slice's name/ts/pid/tid so viewers bind the
   arrow to it. *)
let flow_json tids seen (ev : Tracer.event) =
  if ev.Tracer.cause = 0 then []
  else begin
    let ph =
      if Hashtbl.mem seen ev.Tracer.cause then "t"
      else begin
        Hashtbl.replace seen ev.Tracer.cause ();
        "s"
      end
    in
    [ Json.Obj
        [ ("name", Json.Str ev.Tracer.name);
          ("cat", Json.Str "causal");
          ("ph", Json.Str ph);
          ("id", Json.Int ev.Tracer.cause);
          ("ts", Json.Float (Clock.ns_to_us ev.Tracer.ts_ns));
          ("pid", Json.Int pid);
          ("tid",
           Json.Int (try Hashtbl.find tids ev.Tracer.track with Not_found -> 0)) ] ]
  end

let thread_metadata name tid =
  Json.Obj
    [ ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args",
       Json.Obj [ ("name", Json.Str (if name = "" then "engine" else name)) ]) ]

let to_chrome_trace ?metrics tracer =
  let events = Tracer.events tracer in
  let tids, order = track_ids events in
  let metadata =
    List.map (fun name -> thread_metadata name (Hashtbl.find tids name)) order
  in
  let other =
    [ ("generator", Json.Str "umh-obs");
      ("events_recorded", Json.Int (Tracer.recorded tracer));
      ("events_dropped", Json.Int (Tracer.dropped tracer)) ]
    @ (match metrics with
       | Some registry -> [ ("metrics", Metrics.to_json registry) ]
       | None -> [])
  in
  let seen_causes = Hashtbl.create 64 in
  let body =
    List.concat_map
      (fun ev -> event_json tids ev :: flow_json tids seen_causes ev)
      events
  in
  Json.Obj
    [ ("traceEvents", Json.List (metadata @ body));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj other) ]

let to_chrome_trace_string ?metrics tracer =
  Json.to_string (to_chrome_trace ?metrics tracer)

let write_file path ?metrics tracer =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       output_string oc (to_chrome_trace_string ?metrics tracer);
       output_char oc '\n')
