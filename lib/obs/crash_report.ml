(* Post-mortem crash reports: when a supervisor escalates, a watchdog
   fires, or the hybrid engine detects divergence, snapshot everything a
   post-mortem needs into one self-contained JSON file — the flight
   recorder window, the offending causal chain reconstructed hop by hop
   with wall-clock latencies, whatever state summary the trigger site
   can provide, and a metrics dump.

   Reports are written only when a crash directory has been configured
   ([set_dir]); otherwise [trigger] is a load and a branch, preserving
   the zero-cost contract. File names are a per-process sequence
   (crash-001.json, ...) so tests and tooling can predict them. *)

let schema_version = 1

let dir : string option ref = ref None
let set_dir d = dir := d
let get_dir () = !dir

let seq = ref 0
let last = ref None
let last_report () = !last

(* A trigger site can itself fault (context closures touch engine state
   mid-crash); never let report writing recurse or mask the original
   exception. *)
let in_trigger = ref false

let hop_json prev_wall (e : Flightrec.entry) =
  let fields =
    [ ("kind", Json.Str (Flightrec.kind_name e.Flightrec.e_kind));
      ("sim_time", Json.Float e.Flightrec.e_sim);
      ("wall_ns", Json.Int e.Flightrec.e_wall_ns);
      ("latency_ns",
       match prev_wall with
       | None -> Json.Int 0
       | Some w -> Json.Int (e.Flightrec.e_wall_ns - w)) ]
  in
  let fields =
    if e.Flightrec.e_a = "" then fields
    else fields @ [ ("who", Json.Str e.Flightrec.e_a) ]
  in
  let fields =
    if e.Flightrec.e_b = "" then fields
    else fields @ [ ("what", Json.Str e.Flightrec.e_b) ]
  in
  let fields =
    match e.Flightrec.e_value with
    | None -> fields
    | Some v -> fields @ [ ("value", Json.Float v) ]
  in
  Json.Obj fields

(* Reconstruct one causal chain from the flight-recorder window: the
   entries carrying [cause], oldest first, each hop stamped with the
   wall-clock delta from the previous hop. *)
let chain_json cause =
  let hops =
    List.filter
      (fun (e : Flightrec.entry) -> e.Flightrec.e_cause = cause)
      (Flightrec.entries ())
  in
  let rec build prev_wall = function
    | [] -> []
    | (e : Flightrec.entry) :: rest ->
      hop_json prev_wall e :: build (Some e.Flightrec.e_wall_ns) rest
  in
  Json.Obj
    [ ("cause", Json.Int cause);
      ("hops", Json.List (build None hops)) ]

let write_report path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       output_string oc (Json.to_string json);
       output_char oc '\n')

let trigger ~reason ?role ?(context : (unit -> Json.t) option) () =
  match !dir with
  | None -> None
  | Some _ when !in_trigger -> None
  | Some d ->
    in_trigger := true;
    Fun.protect
      ~finally:(fun () -> in_trigger := false)
      (fun () ->
         match
           let cause = Causal.current () in
           let context_json =
             match context with
             | None -> Json.Null
             | Some f -> (try f () with _ -> Json.Str "<context unavailable>")
           in
           incr seq;
           let path = Filename.concat d (Printf.sprintf "crash-%03d.json" !seq) in
           let report =
             Json.Obj
               [ ("schema", Json.Str "umh-crash-report");
                 ("version", Json.Int schema_version);
                 ("reason", Json.Str reason);
                 ("role",
                  match role with None -> Json.Null | Some r -> Json.Str r);
                 ("cause", Json.Int cause);
                 ("chain", chain_json cause);
                 ("flight_recorder", Flightrec.to_json ());
                 ("context", context_json);
                 ("metrics", Metrics.to_json Metrics.default) ]
           in
           write_report path report;
           path
         with
         | path ->
           last := Some path;
           Some path
         | exception _ -> None)

let reset () =
  seq := 0;
  last := None
