type counter = { c_name : string; mutable count : int }

type gauge = { g_name : string; mutable gvalue : float }

type histogram = {
  h_name : string;
  bounds : float array;   (* strictly increasing upper bounds *)
  buckets : int array;    (* length bounds + 1; last is overflow *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let default = create ()

(* The ambient registry is domain-local: the main domain (and any domain
   that never calls [set_ambient]) resolves to [default], so single-domain
   programs are unchanged. The sharded runtime points each worker domain
   at its own registry so hot-path counter updates never race across
   domains; the shard coordinator merges them at sync points. *)
let ambient_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> default)

let ambient () = Domain.DLS.get ambient_key
let set_ambient r = Domain.DLS.set ambient_key r

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let mismatch name existing wanted =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S is a %s, not a %s" name
       (kind_name existing) wanted)

let counter ?(registry = ambient ()) name =
  match Hashtbl.find_opt registry.table name with
  | Some (Counter c) -> c
  | Some m -> mismatch name m "counter"
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace registry.table name (Counter c);
    c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let value c = c.count

let gauge ?(registry = ambient ()) name =
  match Hashtbl.find_opt registry.table name with
  | Some (Gauge g) -> g
  | Some m -> mismatch name m "gauge"
  | None ->
    let g = { g_name = name; gvalue = 0. } in
    Hashtbl.replace registry.table name (Gauge g);
    g

let set g v = g.gvalue <- v
let gauge_value g = g.gvalue

let log_bounds ~lo ~hi ~per_decade =
  if lo <= 0. || hi <= lo then invalid_arg "Obs.Metrics.log_bounds: need 0 < lo < hi";
  if per_decade < 1 then invalid_arg "Obs.Metrics.log_bounds: per_decade must be >= 1";
  let step = 1. /. float_of_int per_decade in
  let n =
    int_of_float (Float.ceil ((Float.log10 hi -. Float.log10 lo) /. step)) + 1
  in
  Array.init n (fun i -> 10. ** (Float.log10 lo +. (float_of_int i *. step)))

let default_bounds = log_bounds ~lo:1e-9 ~hi:1e3 ~per_decade:3

let validate_bounds bounds =
  if Array.length bounds = 0 then
    invalid_arg "Obs.Metrics.histogram: empty bucket bounds";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Obs.Metrics.histogram: bounds must be strictly increasing"
  done

let histogram ?(registry = ambient ()) ?(bounds = default_bounds) name =
  match Hashtbl.find_opt registry.table name with
  | Some (Histogram h) -> h
  | Some m -> mismatch name m "histogram"
  | None ->
    validate_bounds bounds;
    let h =
      { h_name = name; bounds = Array.copy bounds;
        buckets = Array.make (Array.length bounds + 1) 0;
        h_count = 0; h_sum = 0.; h_min = infinity; h_max = neg_infinity }
    in
    Hashtbl.replace registry.table name (Histogram h);
    h

(* First bucket whose upper bound admits [v] (binary search; the bounds
   array is small but this keeps observe O(log n) regardless). *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then search lo mid else search (mid + 1) hi
  in
  search 0 n (* n = overflow bucket *)

let observe h v =
  let i = bucket_index h.bounds v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let quantile h q =
  if h.h_count = 0 then nan
  else begin
    let rank =
      Int.max 1
        (Int.min h.h_count
           (int_of_float (Float.ceil (q *. float_of_int h.h_count))))
    in
    let rec walk i seen =
      if i >= Array.length h.buckets then h.h_max
      else
        let seen = seen + h.buckets.(i) in
        if seen >= rank then
          (if i < Array.length h.bounds then h.bounds.(i) else h.h_max)
        else walk (i + 1) seen
    in
    walk 0 0
  end

let same_bounds a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i v -> if v <> b.(i) then ok := false) a;
  !ok

let merge_histogram ~into src =
  if not (same_bounds into.bounds src.bounds) then
    invalid_arg
      (Printf.sprintf
         "Obs.Metrics.merge_histogram: %S and %S have different bucket bounds"
         into.h_name src.h_name);
  for i = 0 to Array.length into.buckets - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
  done;
  into.h_count <- into.h_count + src.h_count;
  into.h_sum <- into.h_sum +. src.h_sum;
  if src.h_min < into.h_min then into.h_min <- src.h_min;
  if src.h_max > into.h_max then into.h_max <- src.h_max

let merge ?(sum_gauges = false) ~into src =
  List.iter
    (fun (name, m) ->
       match m with
       | Counter c -> add (counter ~registry:into name) c.count
       | Gauge g ->
         let h = gauge ~registry:into name in
         set h (if sum_gauges then gauge_value h +. g.gvalue else g.gvalue)
       | Histogram h ->
         merge_histogram ~into:(histogram ~registry:into ~bounds:h.bounds name) h)
    (List.sort
       (fun (a, _) (b, _) -> String.compare a b)
       (Hashtbl.fold (fun k v acc -> (k, v) :: acc) src.table []))

let reset registry =
  Hashtbl.iter
    (fun _ m ->
       match m with
       | Counter c -> c.count <- 0
       | Gauge g -> g.gvalue <- 0.
       | Histogram h ->
         Array.fill h.buckets 0 (Array.length h.buckets) 0;
         h.h_count <- 0;
         h.h_sum <- 0.;
         h.h_min <- infinity;
         h.h_max <- neg_infinity)
    registry.table

let metrics registry =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry.table [])

let pp ppf registry =
  List.iter
    (fun (_, m) ->
       match m with
       | Counter c -> Format.fprintf ppf "%-32s counter   %d@." c.c_name c.count
       | Gauge g -> Format.fprintf ppf "%-32s gauge     %g@." g.g_name g.gvalue
       | Histogram h ->
         if h.h_count = 0 then
           Format.fprintf ppf "%-32s histogram (empty)@." h.h_name
         else
           Format.fprintf ppf
             "%-32s histogram n=%d mean=%.3g min=%.3g p50<=%.3g p90<=%.3g p99<=%.3g max=%.3g@."
             h.h_name h.h_count
             (h.h_sum /. float_of_int h.h_count)
             h.h_min (quantile h 0.5) (quantile h 0.9) (quantile h 0.99)
             h.h_max)
    (metrics registry)

type value =
  | Vcounter of int
  | Vgauge of float
  | Vhistogram of { vh_count : int; vh_sum : float }

let size registry = Hashtbl.length registry.table

let snapshot registry =
  List.map
    (fun (name, m) ->
       ( name,
         match m with
         | Counter c -> Vcounter c.count
         | Gauge g -> Vgauge g.gvalue
         | Histogram h -> Vhistogram { vh_count = h.h_count; vh_sum = h.h_sum } ))
    (metrics registry)

let histogram_json h =
  let finite f = if Float.is_nan f || Float.abs f = infinity then Json.Null else Json.Float f in
  Json.Obj
    [ ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("min", finite h.h_min);
      ("max", finite h.h_max);
      ("p50", finite (quantile h 0.5));
      ("p90", finite (quantile h 0.9));
      ("p95", finite (quantile h 0.95));
      ("p99", finite (quantile h 0.99));
      ("buckets",
       Json.List
         (List.concat
            (List.mapi
               (fun i count ->
                  if count = 0 then []
                  else
                    let le =
                      if i < Array.length h.bounds then Json.Float h.bounds.(i)
                      else Json.Str "+inf"
                    in
                    [ Json.Obj [ ("le", le); ("count", Json.Int count) ] ])
               (Array.to_list h.buckets)))) ]

let to_json registry =
  Json.Obj
    (List.map
       (fun (name, m) ->
          ( name,
            match m with
            | Counter c -> Json.Int c.count
            | Gauge g -> Json.Float g.gvalue
            | Histogram h -> histogram_json h ))
       (metrics registry))
