(** Chrome trace-event JSON export (the format chrome://tracing and
    Perfetto open directly).

    Each distinct event track (capsule instance path or streamer role)
    becomes a named thread row; timestamps are wall-clock microseconds,
    and each event carries the simulated time in its [args.t_sim]. *)

val to_chrome_trace : ?metrics:Metrics.t -> Tracer.t -> Json.t
(** An object with a [traceEvents] array (thread-name metadata first,
    then the recorded events, oldest first) and an [otherData] section
    holding the generator name, drop counts and, when [metrics] is given,
    the full metrics dump. *)

val to_chrome_trace_string : ?metrics:Metrics.t -> Tracer.t -> string

val write_file : string -> ?metrics:Metrics.t -> Tracer.t -> unit
(** Write {!to_chrome_trace_string} to a file. *)
