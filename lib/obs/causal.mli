(** Causal chain identifiers.

    A cause ID is a plain [int] minted when an external stimulus enters
    the system (a timer firing, an event posted from outside the
    dispatch loop, an injected fault) and propagated — allocation-free —
    through every queue hop: whoever schedules deferred work captures
    {!current} and restores it around the callback. Tracer events and
    flight-recorder entries read the ambient value, so every record
    carries the chain that produced it. *)

val none : int
(** [0]: no ambient cause. *)

val mint : unit -> int
(** Allocate a fresh cause ID and make it current. *)

val current : unit -> int
(** The ambient cause, or {!none} outside any chain. *)

val set : int -> unit
(** Restore a previously captured cause ({!none} to leave the chain). *)

val minted : unit -> int
(** Number of IDs minted by the calling domain since start (or the last
    {!reset}). *)

val set_identity : base:int -> stride:int -> unit
(** Give the calling domain a collision-free minting identity: fresh IDs
    come from the progression [base + k*stride] ([0 <= base < stride]).
    The default identity is (0, 1) — dense IDs, unchanged single-domain
    behaviour. The sharded runtime assigns worker domain [d] of [n] the
    identity (d, n), so [id mod n] names the minting shard and IDs
    survive domain hops without renumbering. Minting state is
    domain-local; [current]/[set] operate on the calling domain's
    ambient cause. *)

val set_track_births : bool -> unit
(** When on, {!mint} stamps each fresh cause with {!Clock.coarse_ns} so
    reaction points can measure stimulus→reaction latency. Off by
    default (the stamp store is dropped when switched off); enabled by
    {!Profile.set_enabled}. *)

val track_births : unit -> bool

val birth_ns : int -> int
(** Coarse wall clock captured when the given cause was minted, or [0]
    when unknown (tracking off, ID from before tracking started, or
    {!none}). *)

val reset : unit -> unit
(** Reset the counter and ambient cause — test isolation only. *)
