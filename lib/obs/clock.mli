(** Wall-clock time for instrumentation, as integer nanoseconds since an
    arbitrary process-local epoch (so values stay small and subtraction is
    exact). *)

val now_ns : unit -> int
(** Nanoseconds since the epoch. Monotone in practice on the scales
    instrumentation cares about; never negative. *)

val ns_to_us : int -> float
(** Nanoseconds to (fractional) microseconds — the unit Chrome trace
    files use. *)

val refresh_coarse : unit -> unit
(** Re-read the wall clock into the coarse cache. Called once per DES
    dispatch, where allocation is already happening. *)

val coarse_ns : unit -> int
(** Last cached {!now_ns} value. Reading it neither allocates nor hits
    the OS clock, so it is safe on zero-allocation hot paths; resolution
    is one DES dispatch. *)
