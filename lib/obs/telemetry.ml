(* Continuous telemetry: a periodic snapshot emitter that streams one
   self-contained JSONL record per interval — metric deltas since the
   previous record, absolute gauges, flight-recorder drop counts and
   (when the profiler is on) per-entity cost rollups. The emitter itself
   is passive: the engine calls [begin_stream] at simulation start and
   [on_tick] once per streamer tick; the sim-time cadence and the
   optional tick cadence both ride that hook (see the comment on
   [due_origin] for why there is no DES timer on the hot path).

   Zero-cost-when-off contract (same as lib/fault's): when telemetry is
   not configured, the only hook that sits on a hot path — [on_tick] —
   is a single int load + branch, and [emit] is a load + branch. All
   record construction happens on cadence boundaries only.

   Emission has a budget too: at the default 0.1 s cadence on a
   simulation running thousands of times faster than real time, a
   record lands every few hundred microseconds of wall time, so the
   acceptance bar (< 2% on the E3 workload) allows roughly 2 µs per
   record. Two disciplines get us there:

   - A prebuilt emission plan. The metric registry only grows, so we
     keep a name-sorted array of slots — pre-rendered ["name": key
     bytes, the typed handle, the previous value for deltas — and
     rebuild it only when [Metrics.size] changes (rare; prevs carry
     over by name). Each record is then one in-order sweep reading
     mutable fields, no snapshot list, no sort, no merge join.

   - Sprintf-free number printing. [Json.to_string]'s shortest-round
     -trip float search calls sprintf up to 17 times per value (a
     periodic sim time like 0.30000000000000004 hits all 17) and
     [string_of_int] is a C printf; both are replaced by digit loops
     into a reused scratch — see [add_int]/[add_float] below. *)

let schema = "umh-telemetry"
let schema_version = 1
let default_every = 0.1

let on = ref false
let sink : (string -> unit) ref = ref ignore

(* Telemetry state belongs to one domain: the one that called
   [configure]. Worker domains of a sharded run share the engine code
   paths (and so reach the same hooks) but must never emit — the
   coordinator replays the cadence at epoch barriers over the merged
   registries instead. The guard is one int compare on the hot path. *)
let primary = ref (-1)

let[@inline] is_primary () = (Domain.self () :> int) = !primary

(* Where a record reads its data: the main registry by default; the
   shard coordinator retargets both to the merged per-shard view at
   sync points, then restores. *)
let source = ref Metrics.default

let flight_stats =
  ref (fun () -> (Flightrec.total (), Flightrec.dropped ()))

(* Retargeting must invalidate the prebuilt plan: the new registry can
   have the same size as the old one. [plan_for] is defined below; wire
   the invalidation through a forward ref. *)
let invalidate_plan = ref (fun () -> ())

let set_source r =
  source := r;
  !invalidate_plan ()

let set_flight_stats f = flight_stats := f

let reset_sources () =
  source := Metrics.default;
  flight_stats := (fun () -> (Flightrec.total (), Flightrec.dropped ()))
let every_s = ref default_every
let tick_every = ref 0
let tick_left = ref 0
let profile_top = ref 8
let seq = ref 0

(* Sim-time cadence, driven from the engine tick hook rather than a DES
   timer: an extra entry in the event queue deepens the binary heap for
   every push/pop of the run (measurably — ~1.5% on the 16-streamer E3
   workload from the 17th entry alone), while a float compare per tick
   is noise. [due_k] counts boundaries from [due_origin] so [next_due]
   is always computed from the origin, never accumulated — the same
   drift-free discipline as [Des.Timer.periodic]. Engines with no
   streamers (pure-DES models, whose queues are not hot) fall back to a
   timer armed by the engine. *)
let due_origin = ref 0.
let due_k = ref 0
let next_due = ref infinity

(* One slot per registered metric, in name order. [s_key] is the
   pre-escaped ["name": prefix; [s_prev_i]/[s_prev_f] hold the previous
   counter value or histogram count/sum for deltas. *)
type slot = {
  s_key : string;
  s_metric : Metrics.metric;
  mutable s_prev_i : int;
  mutable s_prev_f : float;
}

let plan : slot array ref = ref [||]
let plan_for = ref (-1) (* Metrics.size the plan was built against *)
let () = invalidate_plan := fun () -> plan_for := -1
let prev_flight_total = ref 0
let prev_flight_dropped = ref 0
let buf = Buffer.create 1024

let render_key name =
  let b = Buffer.create (String.length name + 3) in
  Json.to_buffer b (Json.Str name);
  Buffer.add_char b ':';
  Buffer.contents b

(* Rebuild the plan from the current registry, carrying previous values
   over by name so metrics born mid-stream diff against zero while
   existing ones keep their baseline. *)
let rebuild_plan () =
  let old = Hashtbl.create (Array.length !plan) in
  Array.iter (fun s -> Hashtbl.replace old s.s_key s) !plan;
  let entries = Metrics.metrics !source in
  plan :=
    Array.of_list
      (List.map
         (fun (name, m) ->
            let key = render_key name in
            match Hashtbl.find_opt old key with
            | Some s -> { s with s_metric = m }
            | None -> { s_key = key; s_metric = m; s_prev_i = 0; s_prev_f = 0. })
         entries);
  plan_for := Metrics.size !source

let enabled () = !on
let every () = !every_s
let records () = !seq

let configure ?(every = default_every) ?(every_ticks = 0) ?(top = 8) write =
  if Float.is_nan every || every <= 0. then
    invalid_arg "Obs.Telemetry.configure: cadence must be positive";
  if every_ticks < 0 then
    invalid_arg "Obs.Telemetry.configure: negative tick cadence";
  on := true;
  sink := write;
  every_s := every;
  tick_every := every_ticks;
  tick_left := every_ticks;
  profile_top := top;
  primary := (Domain.self () :> int);
  seq := 0;
  due_origin := 0.;
  due_k := 0;
  next_due := infinity;
  plan := [||];
  plan_for := -1;
  prev_flight_total := 0;
  prev_flight_dropped := 0

let stop () =
  on := false;
  sink := ignore;
  tick_every := 0;
  next_due := infinity

(* Hand-rolled digit writers. [string_of_int] costs ~160 ns (a C printf
   under the hood) and a record writes ~15 integers; a digit loop into a
   reused scratch is ~10x cheaper. Single-threaded by the same argument
   as the rest of Obs: the runtime is one OS thread per engine and the
   default registry belongs to one engine. *)
let digits = Bytes.create 24

let add_int b n =
  if n = 0 then Buffer.add_char b '0'
  else if n = min_int then Buffer.add_string b (string_of_int n)
  else begin
    let v = ref (if n < 0 then (Buffer.add_char b '-'; -n) else n) in
    let i = ref 24 in
    while !v > 0 do
      decr i;
      Bytes.unsafe_set digits !i (Char.unsafe_chr (48 + (!v mod 10)));
      v := !v / 10
    done;
    Buffer.add_subbytes b digits !i (24 - !i)
  end

(* Sprintf-free float rendering: fixed-point with 12 fractional digits
   (trailing zeros trimmed), exact enough for telemetry consumers —
   [Json]'s shortest-round-trip printer calls sprintf up to 17 times per
   value, which alone would blow the per-record budget. Magnitudes the
   fixed-point scheme cannot hold (>= 1e15, or nonzero < 1e-9) fall back
   to a single "%.17g". *)
let add_float b f =
  if Float.is_nan f || Float.abs f = infinity then Buffer.add_string b "null"
  else begin
    let af = Float.abs f in
    if Float.is_integer f && af < 1e15 then begin
      add_int b (int_of_float f);
      Buffer.add_string b ".0"
    end
    else if af < 1e15 && af >= 1e-9 then begin
      if f < 0. then Buffer.add_char b '-';
      let ip = int_of_float (Float.trunc af) in
      let fr = int_of_float (Float.round ((af -. Float.trunc af) *. 1e12)) in
      let ip, fr = if fr >= 1_000_000_000_000 then (ip + 1, 0) else (ip, fr) in
      add_int b ip;
      Buffer.add_char b '.';
      if fr = 0 then Buffer.add_char b '0'
      else begin
        (* 12 fractional digits right-to-left, then trim trailing zeros. *)
        let v = ref fr in
        for i = 11 downto 0 do
          Bytes.unsafe_set digits i (Char.unsafe_chr (48 + (!v mod 10)));
          v := !v / 10
        done;
        let last = ref 11 in
        while !last > 0 && Bytes.unsafe_get digits !last = '0' do decr last done;
        Buffer.add_subbytes b digits 0 (!last + 1)
      end
    end
    else Buffer.add_string b (Printf.sprintf "%.17g" f)
  end

let emit ~sim =
  if !on then begin
    if Metrics.size !source <> !plan_for then rebuild_plan ();
    let plan = !plan in
    Buffer.clear buf;
    Buffer.add_string buf "{\"schema\":\"";
    Buffer.add_string buf schema;
    Buffer.add_string buf "\",\"version\":";
    add_int buf schema_version;
    Buffer.add_string buf ",\"seq\":";
    add_int buf !seq;
    Buffer.add_string buf ",\"sim_time\":";
    add_float buf sim;
    Buffer.add_string buf ",\"wall_ns\":";
    add_int buf (Clock.now_ns ());
    (* Three in-order sweeps over the plan, one per section; each is a
       handful of field reads on a small array. *)
    (* Zero deltas are omitted (counters and histograms alike): a
       missing key reads back as "nothing happened this interval", which
       is lossless for every delta-summing consumer and keeps idle
       subsystems (faults, causal, ...) out of every record. *)
    Buffer.add_string buf ",\"counters\":{";
    let first = ref true in
    Array.iter
      (fun s ->
         match s.s_metric with
         | Metrics.Counter c ->
           let v = Metrics.value c in
           if v <> s.s_prev_i then begin
             if !first then first := false else Buffer.add_char buf ',';
             Buffer.add_string buf s.s_key;
             add_int buf (v - s.s_prev_i);
             s.s_prev_i <- v
           end
         | _ -> ())
      plan;
    Buffer.add_string buf "},\"gauges\":{";
    first := true;
    Array.iter
      (fun s ->
         match s.s_metric with
         | Metrics.Gauge g ->
           if !first then first := false else Buffer.add_char buf ',';
           Buffer.add_string buf s.s_key;
           add_float buf (Metrics.gauge_value g)
         | _ -> ())
      plan;
    Buffer.add_string buf "},\"histograms\":{";
    first := true;
    Array.iter
      (fun s ->
         match s.s_metric with
         | Metrics.Histogram h ->
           let c = Metrics.histogram_count h in
           let sum = Metrics.histogram_sum h in
           if c <> s.s_prev_i then begin
             if !first then first := false else Buffer.add_char buf ',';
             Buffer.add_string buf s.s_key;
             Buffer.add_string buf "{\"count\":";
             add_int buf (c - s.s_prev_i);
             Buffer.add_string buf ",\"sum\":";
             add_float buf (sum -. s.s_prev_f);
             Buffer.add_char buf '}'
           end;
           s.s_prev_i <- c;
           s.s_prev_f <- sum
         | _ -> ())
      plan;
    let ft, fd = !flight_stats () in
    Buffer.add_string buf "},\"flightrec\":{\"recorded\":";
    add_int buf (ft - !prev_flight_total);
    Buffer.add_string buf ",\"dropped\":";
    add_int buf (fd - !prev_flight_dropped);
    Buffer.add_char buf '}';
    prev_flight_total := ft;
    prev_flight_dropped := fd;
    if Profile.enabled () then begin
      Buffer.add_string buf ",\"profile\":";
      Json.to_buffer buf (Profile.to_json ~top:!profile_top ())
    end;
    Buffer.add_string buf "}\n";
    !sink (Buffer.contents buf);
    seq := !seq + 1
  end

let begin_stream ~sim =
  if !on && is_primary () then begin
    emit ~sim;
    due_origin := sim;
    due_k := 1;
    next_due := sim +. !every_s
  end

(* Sim-time cadence, emitted at quiescent points: the DES loop calls
   [advance_before ~next] just before executing an event at time [next],
   and we emit the LARGEST pending boundary strictly below [next] —
   at that instant every event at or before the boundary has run and
   none after it, so the record's content is a pure function of the
   event history, not of who is driving the loop. The sharded
   coordinator reproduces the exact same rule at epoch barriers (using
   the global minimum next-event time), which is what makes sharded
   telemetry byte-identical to the single-domain stream. Emitting only
   the largest pending boundary keeps the no-burst contract: events
   sparser than the cadence yield one record per event, not a burst.
   The floor can land a boundary off by one in either direction when
   the division rounds (8.5 /. 0.1 = 84.999...) — hence the corrective
   loops, which guarantee the invariant boundary(k) < next <=
   boundary(k+1) and run at most twice. *)
let boundary k = !due_origin +. (float_of_int k *. !every_s)

let advance_before ~next =
  if !on && next > !next_due && is_primary () then begin
    let k = ref (int_of_float (Float.floor ((next -. !due_origin) /. !every_s))) in
    while boundary !k >= next do decr k done;
    while boundary (!k + 1) < next do incr k done;
    if !k >= !due_k then begin
      emit ~sim:(boundary !k);
      due_k := !k + 1;
      next_due := boundary !due_k
    end
  end

(* End-of-run flush: emit the largest boundary at or below the horizon
   (every event <= the horizon has run by the time the DES loop calls
   this). Without it, a run whose horizon outlives its last event would
   silently drop the trailing boundary. *)
let flush_upto ~upto =
  if !on && upto >= !next_due && is_primary () then begin
    let k = ref (int_of_float (Float.floor ((upto -. !due_origin) /. !every_s))) in
    while boundary !k > upto do decr k done;
    while boundary (!k + 1) <= upto do incr k done;
    if !k >= !due_k then begin
      emit ~sim:(boundary !k);
      due_k := !k + 1;
      next_due := boundary !due_k
    end
  end

(* The earliest cadence boundary not yet emitted (infinity when off or
   before [begin_stream]) — the shard coordinator cuts its epochs here so
   that no emission opportunity falls strictly inside an epoch. *)
let next_boundary_due () = !next_due

let on_tick ~sim =
  if !on && !tick_every > 0 && is_primary () then begin
    tick_left := !tick_left - 1;
    if !tick_left <= 0 then begin
      tick_left := !tick_every;
      emit ~sim
    end
  end
