type policy = Spec.policy = Restart | Freeze_last | Escalate

let m_restarts = Obs.Metrics.counter "supervisor.restarts"
let m_degraded = Obs.Metrics.gauge "degraded.time"

let note_restart () = Obs.Metrics.incr m_restarts
let restarts_total () = Obs.Metrics.value m_restarts
let set_degraded_time seconds = Obs.Metrics.set m_degraded seconds

type watchdog = {
  engine : Des.Engine.t;
  name : string;
  timeout : float;
  on_timeout : unit -> unit;
  mutable timer : Des.Timer.t option;
  mutable expirations : int;
  mutable stopped : bool;
}

(* Re-arm by cancelling and re-scheduling a one-shot: pets are rare
   (one per supervised delivery) next to DES dispatch volume, so the
   extra cancelled heap entry is cheap — and since PR 4 a cancelled
   entry releases its closure immediately. *)
let rec arm w =
  let timer =
    Des.Timer.one_shot w.engine ~name:w.name ~delay:w.timeout (fun () ->
        w.expirations <- w.expirations + 1;
        w.on_timeout ();
        if not w.stopped then arm w)
  in
  w.timer <- Some timer

let watchdog engine ?(name = "watchdog") ~timeout on_timeout =
  if Float.is_nan timeout || timeout <= 0. || timeout = infinity then
    invalid_arg
      (Printf.sprintf
         "Fault.Supervisor.watchdog: timer %S: timeout must be positive and \
          finite" name);
  let w =
    { engine; name; timeout; on_timeout; timer = None; expirations = 0;
      stopped = false }
  in
  arm w;
  w

let pet w =
  if not w.stopped then begin
    (match w.timer with Some t -> Des.Timer.cancel t | None -> ());
    arm w
  end

let stop w =
  w.stopped <- true;
  (match w.timer with Some t -> Des.Timer.cancel t | None -> ());
  w.timer <- None

let expirations w = w.expirations

let is_active w = not w.stopped
