(** Declarative fault specifications.

    A spec is a seed, a list of fault rules, and optional supervision
    directives, written in a small line-oriented text format so scenarios
    can live in version-controlled [.fault] files and be replayed
    bit-for-bit from the seed:

    {v
    # chaos for the thermostat demo
    seed 42
    supervise restart
    degrade-signal fallback

    drop signal room p=0.3
    delay signal room.ctl by=0.5 p=1 from=10 until=20
    duplicate signal room p=0.25
    reorder signal room within=0.1 p=0.5
    corrupt flow room.temp scale=1.05 bias=-0.2 p=0.2
    nan flow room.temp from=30 until=31
    freeze flow room.temp from=40
    stall solver room from=5 until=7
    v}

    Targets match a qualified name ([role] for signals and solvers,
    [role.port] for flows and sports): exactly, by trailing-[*] prefix,
    or everything with ["*"]. Windows default to \[0, infinity). The
    first rule matching a given target decides the outcome. *)

type window = { from_ : float; until : float }

type action =
  | Drop of float                     (** signal: lose with probability p *)
  | Delay of float * float            (** signal: probability, extra delay *)
  | Duplicate of float                (** signal: deliver twice, probability *)
  | Reorder of float * float          (** signal: probability, hold window —
                                          swap with the next signal, flush
                                          after the hold expires *)
  | Corrupt of float * float * float  (** flow: probability, scale, bias *)
  | Nan_poison of float               (** flow: write NaN, probability *)
  | Freeze                            (** flow: hold last value in window *)
  | Stall                             (** solver: no advance inside window *)

type kind = Signal | Flow | Solver

val kind_of_action : action -> kind

type rule = {
  kind : kind;
  target : string;
  window : window;
  action : action;
}

type policy =
  | Restart       (** reset the faulty component to its initial config *)
  | Freeze_last   (** stop it, holding its last outputs *)
  | Escalate      (** re-raise: fail the run *)

val policy_name : policy -> string
val policy_of_string : string -> policy option

type t = {
  seed : int;
  rules : rule list;
  policy : policy option;          (** [supervise] directive *)
  degrade_signal : string option;  (** [degrade-signal] directive *)
}

val empty : t
(** Seed 0, no rules, no supervision — attaching it must be free. *)

val of_string : string -> (t, string) result
(** Parse the text format; errors carry the 1-based line number. *)

val of_file : string -> (t, string) result

val to_string : t -> string
(** Canonical text form; [of_string (to_string s)] round-trips. *)

val matches : pattern:string -> string -> bool
(** Allocation-free target match: exact, trailing-[*] prefix, or ["*"]. *)

val in_window : window -> float -> bool
