(** Deterministic fault injection.

    An injector turns a {!Spec.t} into queryable runtime hooks. All
    randomness comes from one private xorshift stream seeded by the
    spec's seed — independent of the engine's own RNGs — so the same
    spec replays the same fault schedule against the same model, and
    attaching a fault layer never perturbs the run's existing random
    draws.

    Hot-path contract: the [has_*_rules] flags are precomputed, so an
    engine holding an injector with no rules of a kind pays one load and
    branch per query site — an attached-but-empty spec leaves the
    simulation bit-identical and allocation-free. *)

type t

val create : Spec.t -> t
val spec : t -> Spec.t

val has_signal_rules : t -> bool
val has_flow_rules : t -> bool
val has_solver_rules : t -> bool

type signal_fate =
  | Pass
  | Lose                (** drop the signal *)
  | Postpone of float   (** deliver after an extra delay *)
  | Duplicate           (** deliver twice *)
  | Hold of float       (** hold to swap with the next signal; flush after
                            the given time if none arrives *)

val signal_fate : t -> role:string -> sport:string -> now:float -> signal_fate
(** Fate of one signal crossing the capsule/streamer border. Rules match
    the role or the qualified [role.sport] name; the first match decides
    and consumes at most one random draw. *)

val flow_frozen : t -> target:string -> now:float -> bool
(** Whether a [freeze] rule holds this [role.dport] flow right now. *)

val flow_value : t -> target:string -> now:float -> float -> float
(** Value actually written to the flow: corrupted ([scale * v + bias]),
    NaN-poisoned, or unchanged. Allocation-free. *)

val solver_stalled : t -> target:string -> now:float -> bool
(** Whether a [stall] rule suspends this streamer's solver right now. *)

val injected : t -> int
(** Total faults injected (also mirrored in the process-wide
    ["fault.injected"] metrics counter). *)

val injected_counts : t -> (string * int) list
(** Per-action injection counts (["drop"], ["delay"], ...), only
    non-zero entries, sorted by action name. *)
