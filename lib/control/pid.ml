type gains = {
  kp : float;
  ki : float;
  kd : float;
}

type t = {
  mutable g : gains;
  output_min : float;
  output_max : float;
  derivative_filter : float;
  mutable integral : float;
  mutable prev_error : float option;
  mutable deriv_state : float;
}

let create ?(output_min = neg_infinity) ?(output_max = infinity)
    ?(derivative_filter = 0.) g =
  (* NaN bounds defeat both the range check below (NaN comparisons are
     all false) and the output clamp in [update], so reject them here. *)
  if Float.is_nan output_min || Float.is_nan output_max then
    invalid_arg "Control.Pid.create: NaN output bound";
  if output_min > output_max then
    invalid_arg "Control.Pid.create: output_min > output_max";
  if Float.is_nan derivative_filter then
    invalid_arg "Control.Pid.create: NaN derivative filter constant";
  if derivative_filter < 0. then
    invalid_arg "Control.Pid.create: negative derivative filter constant";
  { g; output_min; output_max; derivative_filter;
    integral = 0.; prev_error = None; deriv_state = 0. }

let gains t = t.g
let set_gains t g = t.g <- g

let update t ~setpoint ~measurement ~dt =
  if dt <= 0. then invalid_arg "Control.Pid.update: dt must be positive";
  let error = setpoint -. measurement in
  let raw_derivative =
    match t.prev_error with
    | None -> 0.
    | Some prev -> (error -. prev) /. dt
  in
  let derivative =
    if t.derivative_filter <= 0. then raw_derivative
    else begin
      (* First-order low-pass on the derivative term. *)
      let alpha = dt /. (t.derivative_filter +. dt) in
      t.deriv_state <- t.deriv_state +. (alpha *. (raw_derivative -. t.deriv_state));
      t.deriv_state
    end
  in
  let candidate_integral = t.integral +. (t.g.ki *. error *. dt) in
  let unclamped =
    (t.g.kp *. error) +. candidate_integral +. (t.g.kd *. derivative)
  in
  let output = Float.max t.output_min (Float.min t.output_max unclamped) in
  (* Conditional integration: freeze the integrator while pushing further
     into saturation, accept it otherwise. *)
  let saturating =
    (unclamped > t.output_max && error > 0.) || (unclamped < t.output_min && error < 0.)
  in
  if not saturating then t.integral <- candidate_integral;
  t.prev_error <- Some error;
  output

let reset t =
  t.integral <- 0.;
  t.prev_error <- None;
  t.deriv_state <- 0.

let integrator t = t.integral
