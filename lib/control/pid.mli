(** Discrete PID controller with clamping anti-windup and filtered
    derivative. Stateful: one instance per control loop. *)

type gains = {
  kp : float;
  ki : float;
  kd : float;
}

type t

val create :
  ?output_min:float -> ?output_max:float
  -> ?derivative_filter:float
     (** time constant of the derivative low-pass, 0 = unfiltered *)
  -> gains -> t
(** Raises [Invalid_argument] when [output_min > output_max], when either
    bound or the filter constant is NaN, or when the filter constant is
    negative. *)

val gains : t -> gains
val set_gains : t -> gains -> unit
(** Retune on the fly (the integrator state is preserved). *)

val update : t -> setpoint:float -> measurement:float -> dt:float -> float
(** One control step; [dt > 0]. Output is clamped to the limits, and the
    integrator only accumulates while the output is unsaturated
    (conditional integration). *)

val reset : t -> unit
(** Clear integrator and derivative memory. *)

val integrator : t -> float
(** Current integrator contribution (diagnostics, windup tests). *)
