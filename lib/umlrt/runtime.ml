exception Invalid_model of string list
exception Watchdog_expired of string

type instance = {
  path : string;
  flight_id : int;  (* [path] interned for the flight recorder *)
  prof_id : int;    (* profiler slot for this capsule *)
  klass : Capsule.t;
  mailbox : (string * Statechart.Event.t) Des.Mailbox.t;
  mutable behavior : Capsule.behavior option;
  mutable watchdog : Fault.Supervisor.watchdog option;
  mutable quarantined : bool;
  mutable restarts : int;
}

type target =
  | To_instance of string * string
  | To_environment of string
  | Unconnected

type t = {
  engine : Des.Engine.t;
  root_path : string;
  instances : (string, instance) Hashtbl.t;
  mutable order : string list;  (* instantiation order, reversed *)
  mutable links : ((string * string) * (string * string)) list;
  outbox : (string * Statechart.Event.t) Queue.t;
  mutable env_listener : (port:string -> Statechart.Event.t -> unit) option;
  mutable pending_starts : Capsule.behavior list;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable supervisor : Fault.Supervisor.policy option;
  mutable max_restarts : int;
  mutable restarts : int;
  (* Messaging observability, resolved against the registry that was
     ambient when this runtime was created (per-domain under sharding). *)
  m_sent : Obs.Metrics.counter;
  m_delivered : Obs.Metrics.counter;
  m_dropped : Obs.Metrics.counter;
  m_rtc : Obs.Metrics.counter;
  m_unhandled : Obs.Metrics.counter;
}

let engine t = t.engine

let instance_paths t = List.rev t.order

let find_instance t path = Hashtbl.find_opt t.instances path

let port_decl t (path, port) =
  match find_instance t path with
  | None -> None
  | Some inst -> Capsule.find_port inst.klass port

let partners t node ~excluding =
  List.filter_map
    (fun (a, b) ->
       if a = node && Some b <> excluding then Some b
       else if b = node && Some a <> excluding then Some a
       else None)
    t.links

let is_root_border t (path, port) =
  String.equal path t.root_path && port_decl t (path, port) <> None

(* Follow the connector chain starting at [start]; [prev] is where we came
   from (so a relay continues through its other side). *)
let rec walk t ~prev cur =
  match port_decl t cur with
  | None -> Unconnected
  | Some decl ->
    (match decl.Capsule.kind with
     | Capsule.End ->
       let path, port = cur in
       (match find_instance t path with
        | Some inst when inst.behavior <> None -> To_instance (path, port)
        | Some _ | None ->
          if is_root_border t cur then To_environment port else Unconnected)
     | Capsule.Relay ->
       (match partners t cur ~excluding:prev with
        | next :: _ -> walk t ~prev:(Some cur) next
        | [] ->
          let _, port = cur in
          if is_root_border t cur then To_environment port else Unconnected))

let resolve_from t start =
  match partners t start ~excluding:None with
  | next :: _ -> walk t ~prev:(Some start) next
  | [] ->
    (* A border relay port with no link on either side, or an end port
       never wired: the message has nowhere to go. *)
    if is_root_border t start then To_environment (snd start) else Unconnected

let resolve t ~path ~port = resolve_from t (path, port)

let to_environment t port event =
  match t.env_listener with
  | Some f -> f ~port event
  | None -> Queue.push (port, event) t.outbox

let drop t =
  t.dropped <- t.dropped + 1;
  Obs.Metrics.incr t.m_dropped

let deliver_target t event = function
  | To_instance (path, port) ->
    (match find_instance t path with
     | Some inst -> Des.Mailbox.send inst.mailbox (port, event)
     | None -> drop t)
  | To_environment port -> to_environment t port event
  | Unconnected -> drop t

let send_from t inst ~port event =
  match Capsule.find_port inst.klass port with
  | None ->
    invalid_arg
      (Printf.sprintf "Umlrt.Runtime.send: capsule %s has no port %S" inst.path port)
  | Some decl ->
    if not (Protocol.can_send decl.Capsule.protocol
              ~conjugated:decl.Capsule.conjugated (Statechart.Event.signal event))
    then
      invalid_arg
        (Printf.sprintf "Umlrt.Runtime.send: port %s.%s cannot send signal %S"
           inst.path port (Statechart.Event.signal event));
    t.sent <- t.sent + 1;
    Obs.Metrics.incr t.m_sent;
    Obs.Flightrec.record ~kind:Obs.Flightrec.k_signal_send ~a:inst.flight_id
      ~b:(Obs.Flightrec.intern (Statechart.Event.signal event))
      ~sim:(Des.Engine.now t.engine);
    if Obs.Tracer.enabled () then
      Obs.Tracer.instant ~track:inst.path ~cat:"umlrt" ~name:"send"
        ~args:
          [ ("port", Obs.Tracer.Str port);
            ("signal", Obs.Tracer.Str (Statechart.Event.signal event)) ]
        ~sim_time:(Des.Engine.now t.engine) ();
    deliver_target t event (resolve_from t (inst.path, port))

let self_port = "^timer"

let services_for t inst =
  {
    Capsule.send = (fun ~port event -> send_from t inst ~port event);
    timer_after =
      (fun delay event ->
         ignore
           (Des.Timer.one_shot t.engine ~delay (fun () ->
                Des.Mailbox.send inst.mailbox (self_port, event))));
    timer_every =
      (fun period event ->
         ignore
           (Des.Timer.periodic t.engine ~period (fun _ ->
                Des.Mailbox.send inst.mailbox (self_port, event))));
    now = (fun () -> Des.Engine.now t.engine);
  }

(* Throw away the failed behaviour and build a fresh one from the capsule's
   factory — state is lost by design (the paper's restartable-component
   view); timers armed by the old behaviour still feed the mailbox and are
   simply handled by the replacement. *)
let restart_instance (t : t) (inst : instance) =
  match Capsule.behavior inst.klass with
  | None -> false
  | Some factory ->
    let b = factory (services_for t inst) in
    inst.behavior <- Some b;
    inst.quarantined <- false;
    inst.restarts <- inst.restarts + 1;
    t.restarts <- t.restarts + 1;
    Fault.Supervisor.note_restart ();
    Obs.Flightrec.record ~kind:Obs.Flightrec.k_restart ~a:inst.flight_id
      ~b:Obs.Flightrec.no_label ~sim:(Des.Engine.now t.engine);
    if Obs.Tracer.enabled () then
      Obs.Tracer.instant ~track:inst.path ~cat:"fault" ~name:"capsule_restart"
        ~sim_time:(Des.Engine.now t.engine) ();
    b.Capsule.on_start ();
    true

let quarantine (t : t) (inst : instance) =
  if not inst.quarantined then begin
    inst.quarantined <- true;
    Obs.Flightrec.record ~kind:Obs.Flightrec.k_quarantine ~a:inst.flight_id
      ~b:Obs.Flightrec.no_label ~sim:(Des.Engine.now t.engine);
    if Obs.Tracer.enabled () then
      Obs.Tracer.instant ~track:inst.path ~cat:"fault" ~name:"capsule_quarantined"
        ~sim_time:(Des.Engine.now t.engine) ()
  end

(* Capsule state summary for crash reports — evaluated lazily, only when
   a report is actually written. *)
let capsule_context t inst () =
  Obs.Json.Obj
    [ ("path", Obs.Json.Str inst.path);
      ("sim_time", Obs.Json.Float (Des.Engine.now t.engine));
      ("restarts", Obs.Json.Int inst.restarts);
      ("quarantined", Obs.Json.Bool inst.quarantined);
      ("configuration",
       match inst.behavior with
       | Some b ->
         Obs.Json.List
           (List.map (fun s -> Obs.Json.Str s) (b.Capsule.configuration ()))
       | None -> Obs.Json.Null) ]

let handle_capsule_fault (t : t) (inst : instance) ~reraise =
  match t.supervisor with
  | None | Some Fault.Supervisor.Escalate ->
    ignore
      (Obs.Crash_report.trigger ~reason:"capsule_escalation" ~role:inst.path
         ~context:(capsule_context t inst) ());
    reraise ()
  | Some Fault.Supervisor.Restart ->
    if inst.restarts >= t.max_restarts || not (restart_instance t inst) then
      quarantine t inst
  | Some Fault.Supervisor.Freeze_last -> quarantine t inst

(* Behaviour dispatch with optional supervision: without a supervisor the
   exception path is exactly the pre-supervision one (no handler frame). *)
let dispatch t inst (b : Capsule.behavior) ~port event =
  match t.supervisor with
  | None -> b.Capsule.on_event ~port event
  | Some _ ->
    (try b.Capsule.on_event ~port event
     with e ->
       handle_capsule_fault t inst ~reraise:(fun () -> raise e);
       (* The fault was absorbed by the policy; the message is accounted
          for rather than reported as an unhandled drop. *)
       true)

(* Each delivery invokes the listener once; popping exactly one message
   gives one run-to-completion step per mailbox event. *)
let on_delivery t inst mailbox =
  match Des.Mailbox.pop mailbox with
  | None -> ()
  | Some (port, event) ->
    if inst.quarantined then drop t
    else
    (match inst.behavior with
     | Some b ->
       (match inst.watchdog with
        | Some w -> Fault.Supervisor.pet w
        | None -> ());
       t.delivered <- t.delivered + 1;
       Obs.Metrics.incr t.m_delivered;
       Obs.Metrics.incr t.m_rtc;
       Obs.Flightrec.record ~kind:Obs.Flightrec.k_rtc ~a:inst.flight_id
         ~b:(Obs.Flightrec.intern (Statechart.Event.signal event))
         ~sim:(Des.Engine.now t.engine);
       (* The capsule-side reaction point of a causal chain: the RTC
          step about to run is the reaction to whatever stimulus minted
          the ambient cause. *)
       Obs.Profile.note_capsule_reaction ();
       let profiling = Obs.Profile.enabled () in
       if profiling then Obs.Profile.enter inst.prof_id;
       let handled =
         if Obs.Tracer.enabled () then begin
           let start = Obs.Tracer.now_ns () in
           let handled = dispatch t inst b ~port event in
           Obs.Tracer.complete ~track:inst.path ~cat:"umlrt" ~name:"rtc"
             ~args:
               [ ("port", Obs.Tracer.Str port);
                 ("signal", Obs.Tracer.Str (Statechart.Event.signal event));
                 ("handled", Obs.Tracer.Bool handled) ]
             ~sim_time:(Des.Engine.now t.engine) ~start_ns:start ();
           handled
         end
         else dispatch t inst b ~port event
       in
       if profiling then Obs.Profile.exit_ inst.prof_id;
       if not handled then begin
         t.dropped <- t.dropped + 1;
         Obs.Metrics.incr t.m_unhandled
       end
     | None ->
       if String.equal inst.path t.root_path then to_environment t port event
       else drop t)

let rec instantiate t ~latency ~path klass =
  let mailbox = Des.Mailbox.create t.engine ~latency path in
  let inst =
    { path; flight_id = Obs.Flightrec.intern path;
      prof_id = Obs.Profile.register ~kind:Obs.Profile.k_capsule path;
      klass; mailbox;
      behavior = None; watchdog = None; quarantined = false; restarts = 0 }
  in
  Hashtbl.replace t.instances path inst;
  t.order <- path :: t.order;
  Des.Mailbox.set_listener mailbox (fun mb -> on_delivery t inst mb);
  (* Register this capsule's connectors as links between concrete ports. *)
  let endpoint_node (ep : Capsule.endpoint) =
    match ep.Capsule.part with
    | None -> (path, ep.Capsule.port)
    | Some part -> (path ^ "/" ^ part, ep.Capsule.port)
  in
  List.iter
    (fun (c : Capsule.connector) ->
       t.links <- (endpoint_node c.Capsule.from_, endpoint_node c.Capsule.to_) :: t.links)
    (Capsule.connectors klass);
  List.iter
    (fun (part, sub) -> instantiate t ~latency ~path:(path ^ "/" ^ part) sub)
    (Capsule.parts klass)

let start_behaviors t =
  let pending = t.pending_starts in
  t.pending_starts <- [];
  List.iter (fun b -> b.Capsule.on_start ()) pending

let create engine ?(latency = 0.) ?(defer_start = false) root =
  (match Capsule.validate root with
   | [] -> ()
   | errors -> raise (Invalid_model errors));
  let t =
    { engine; root_path = Capsule.name root; instances = Hashtbl.create 16;
      order = []; links = []; outbox = Queue.create (); env_listener = None;
      pending_starts = []; sent = 0; delivered = 0; dropped = 0;
      supervisor = None; max_restarts = max_int; restarts = 0;
      m_sent = Obs.Metrics.counter "umlrt.signals_sent";
      m_delivered = Obs.Metrics.counter "umlrt.signals_delivered";
      m_dropped = Obs.Metrics.counter "umlrt.signals_dropped";
      m_rtc = Obs.Metrics.counter "umlrt.rtc_steps";
      m_unhandled = Obs.Metrics.counter "umlrt.events_unhandled" }
  in
  instantiate t ~latency ~path:t.root_path root;
  (* Create behaviours parent-first, then start them in the same order. *)
  t.pending_starts <-
    List.filter_map
      (fun path ->
         match find_instance t path with
         | None -> None
         | Some inst ->
           (match Capsule.behavior inst.klass with
            | Some factory ->
              let b = factory (services_for t inst) in
              inst.behavior <- Some b;
              Some b
            | None -> None))
      (instance_paths t);
  if not defer_start then start_behaviors t;
  t

let configuration t path =
  match find_instance t path with
  | Some { behavior = Some b; _ } -> Some (b.Capsule.configuration ())
  | Some { behavior = None; _ } | None -> None

let root_path t = t.root_path

let deliver_to t ~path ~port event =
  match find_instance t path with
  | Some inst ->
    t.sent <- t.sent + 1;
    Obs.Metrics.incr t.m_sent;
    Des.Mailbox.send inst.mailbox (port, event);
    true
  | None -> false

let inject t ~port event =
  match port_decl t (t.root_path, port) with
  | None ->
    invalid_arg (Printf.sprintf "Umlrt.Runtime.inject: root has no port %S" port)
  | Some decl ->
    t.sent <- t.sent + 1;
    Obs.Metrics.incr t.m_sent;
    (* An injection is an external stimulus: it roots a fresh causal
       chain, which the mailbox hop captures; the ambient cause of
       whoever called us (e.g. a test poking mid-dispatch) is restored
       after. *)
    let ambient = Obs.Causal.current () in
    (* Injections happen outside the dispatch loop, so the coarse clock
       may be stale from the last event; refresh it before minting so
       the chain's birth stamp reflects the injection itself. *)
    Obs.Clock.refresh_coarse ();
    ignore (Obs.Causal.mint ());
    Obs.Flightrec.record ~kind:Obs.Flightrec.k_inject
      ~a:(Obs.Flightrec.intern port)
      ~b:(Obs.Flightrec.intern (Statechart.Event.signal event))
      ~sim:(Des.Engine.now t.engine);
    (match decl.Capsule.kind with
     | Capsule.End ->
       (* Border End port: the root's own behaviour receives it. *)
       (match find_instance t t.root_path with
        | Some inst when inst.behavior <> None ->
          Des.Mailbox.send inst.mailbox (port, event)
        | Some _ | None -> drop t)
     | Capsule.Relay ->
       deliver_target t event (resolve_from t (t.root_path, port)));
    Obs.Causal.set ambient

let set_environment_listener t f = t.env_listener <- Some f
let clear_environment_listener t = t.env_listener <- None

let drain_outbox t =
  let items = List.of_seq (Queue.to_seq t.outbox) in
  Queue.clear t.outbox;
  items

type stats = { sent : int; delivered : int; dropped : int }

let stats (t : t) = { sent = t.sent; delivered = t.delivered; dropped = t.dropped }

let set_supervisor t ?(max_restarts = max_int) policy =
  if max_restarts < 0 then
    invalid_arg "Umlrt.Runtime.set_supervisor: max_restarts must be non-negative";
  t.supervisor <- Some policy;
  t.max_restarts <- max_restarts

let supervisor t = t.supervisor

let restart_capsule t ~path =
  match find_instance t path with
  | None ->
    invalid_arg
      (Printf.sprintf "Umlrt.Runtime.restart_capsule: unknown capsule %S" path)
  | Some inst -> restart_instance t inst

let watch_capsule t ~path ~timeout =
  match find_instance t path with
  | None ->
    invalid_arg
      (Printf.sprintf "Umlrt.Runtime.watch_capsule: unknown capsule %S" path)
  | Some inst ->
    (match inst.watchdog with
     | Some w -> Fault.Supervisor.stop w
     | None -> ());
    let w =
      Fault.Supervisor.watchdog t.engine ~name:(path ^ ".watchdog") ~timeout
        (fun () ->
           Obs.Flightrec.record ~kind:Obs.Flightrec.k_watchdog
             ~a:inst.flight_id ~b:Obs.Flightrec.no_label
             ~sim:(Des.Engine.now t.engine);
           match t.supervisor with
           | None | Some Fault.Supervisor.Restart ->
             if inst.restarts >= t.max_restarts || not (restart_instance t inst)
             then quarantine t inst
           | Some Fault.Supervisor.Freeze_last -> quarantine t inst
           | Some Fault.Supervisor.Escalate ->
             ignore
               (Obs.Crash_report.trigger ~reason:"watchdog_expired" ~role:path
                  ~context:(capsule_context t inst) ());
             raise (Watchdog_expired path))
    in
    inst.watchdog <- Some w

let unwatch_capsule t ~path =
  match find_instance t path with
  | None -> ()
  | Some inst ->
    (match inst.watchdog with
     | Some w -> Fault.Supervisor.stop w; inst.watchdog <- None
     | None -> ())

let watchdog_expirations t ~path =
  match find_instance t path with
  | Some { watchdog = Some w; _ } -> Fault.Supervisor.expirations w
  | Some { watchdog = None; _ } | None -> 0

let capsule_restarts t = t.restarts

let is_quarantined t ~path =
  match find_instance t path with
  | Some inst -> inst.quarantined
  | None -> false

let quarantined_paths t =
  List.filter
    (fun path ->
       match find_instance t path with
       | Some inst -> inst.quarantined
       | None -> false)
    (instance_paths t)
